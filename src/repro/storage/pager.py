"""Paged files on top of the simulated disk.

A :class:`PagedFile` is a logical sequence of pages mapped onto physical
extents of the disk.  A file created with its final size in one
``allocate`` call is fully contiguous; a file grown incrementally
accretes extents, which may be scattered between other allocations —
mirroring how real filesystems fragment incrementally grown files and
how top-down-built indexes scatter their leaves.

A file is bound to a *device* — anything exposing ``page_size``,
``allocate``, ``read_page`` and ``write_page``: the shared
:class:`repro.storage.disk.SimulatedDisk`, a
:class:`repro.storage.disk.DiskShard` private to one worker, or a
:class:`repro.storage.bufferpool.BufferPool` wrapping either.  The
binding is explicit rather than a global: :meth:`PagedFile.attach`
yields a view of the same extents on a different device, which is how
parallel workers read a shared run through their own shard (their own
head, their own stats) without mutating anybody else's state, and how
a file written inside a sharded session is re-bound to the parent disk
after detach.
"""

from __future__ import annotations

from dataclasses import dataclass

from .disk import PageError, SimulatedDisk


@dataclass(frozen=True)
class Extent:
    """A physically contiguous range of pages."""

    first_page: int
    n_pages: int

    def contains(self, offset: int) -> bool:
        return 0 <= offset < self.n_pages


class PagedFile:
    """A logical page space backed by one or more physical extents."""

    def __init__(self, disk: SimulatedDisk, n_pages: int = 0, name: str = ""):
        self.disk = disk
        self.name = name
        self._extents: list[Extent] = []
        self._n_pages = 0
        if n_pages:
            self.grow(n_pages)

    @classmethod
    def from_extent(
        cls, device, first_page: int, n_pages: int, name: str = ""
    ) -> "PagedFile":
        """Wrap an already-allocated contiguous extent as a file.

        No allocation or I/O happens — the pages may already hold data.
        This is how the sharded merge stitches the output extent it
        pre-allocated (and that workers filled through their shards)
        into an ordinary file on the parent device.
        """
        file = cls(device, name=name)
        if n_pages:
            file._extents = [Extent(first_page, n_pages)]
            file._n_pages = n_pages
        return file

    def attach(self, device) -> "PagedFile":
        """A view of this file bound to ``device``, same extent table.

        The view maps logical pages to the same physical pages but
        performs its I/O on ``device`` — a worker's
        :class:`repro.storage.disk.DiskShard` or per-shard
        :class:`repro.storage.bufferpool.BufferPool` for concurrent
        read-only access, or the parent disk to re-bind a file after a
        sharded session detaches.  Views are for I/O on the existing
        pages; growing a view does not grow the original.
        """
        view = PagedFile(device, name=self.name)
        view._extents = list(self._extents)
        view._n_pages = self._n_pages
        return view

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def n_pages(self) -> int:
        return self._n_pages

    @property
    def n_extents(self) -> int:
        return len(self._extents)

    @property
    def size_bytes(self) -> int:
        return self._n_pages * self.disk.page_size

    def grow(self, n_pages: int) -> int:
        """Append ``n_pages`` as one new physical extent.

        Returns the logical page index of the first new page.  The new
        extent is merged with the previous one when it happens to be
        physically adjacent (no intervening allocation).
        """
        if n_pages <= 0:
            raise ValueError(f"n_pages must be positive, got {n_pages}")
        first_logical = self._n_pages
        first_physical = self.disk.allocate(n_pages)
        if (
            self._extents
            and self._extents[-1].first_page + self._extents[-1].n_pages
            == first_physical
        ):
            last = self._extents[-1]
            self._extents[-1] = Extent(last.first_page, last.n_pages + n_pages)
        else:
            self._extents.append(Extent(first_physical, n_pages))
        self._n_pages += n_pages
        return first_logical

    def physical_page(self, logical: int) -> int:
        """Map a logical page index to its physical page id."""
        if not 0 <= logical < self._n_pages:
            raise PageError(
                f"logical page {logical} out of range [0, {self._n_pages})"
            )
        remaining = logical
        for extent in self._extents:
            if extent.contains(remaining):
                return extent.first_page + remaining
            remaining -= extent.n_pages
        raise AssertionError("extent bookkeeping out of sync")  # pragma: no cover

    def _physical_runs(
        self, first_logical: int, n_pages: int
    ) -> "list[tuple[int, int]]":
        """Map a logical page range to contiguous physical runs.

        Returns ``(first_physical, n_pages)`` pairs in logical order —
        one pair per extent the range crosses.  This is the planning
        step of the bytes-level streaming fast path: the extent walk
        happens once per range instead of once per page.
        """
        runs: list[tuple[int, int]] = []
        skip, need = first_logical, n_pages
        for extent in self._extents:
            if need == 0:
                break
            if skip >= extent.n_pages:
                skip -= extent.n_pages
                continue
            take = min(extent.n_pages - skip, need)
            runs.append((extent.first_page + skip, take))
            skip = 0
            need -= take
        return runs

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def write(self, logical: int, data: bytes) -> None:
        # Integrity sidecar: record the *intended* payload, and only
        # after the device acks.  Recording above the device is what
        # catches an in-flight FaultyDevice bit flip (the device would
        # checksum the already-flipped bytes); recording after the ack
        # keeps a write that faulted before taking effect from moving
        # the expectation off the bytes actually in the store.
        physical = self.physical_page(logical)
        self.disk.write_page(physical, data)
        checksums = getattr(self.disk, "checksums", None)
        if checksums is not None:
            checksums.record_page(physical, data)

    def read(self, logical: int) -> bytes:
        return self.disk.read_page(self.physical_page(logical))

    def append_page(self, data: bytes) -> int:
        """Grow the file by one page and write ``data`` into it."""
        logical = self.grow(1)
        self.write(logical, data)
        return logical

    def write_stream(self, data: bytes, at_page: int = 0) -> int:
        """Write a byte stream across consecutive logical pages.

        The file is grown as needed.  Returns the number of pages used.
        The inner loop streams whole extents through the device's
        bytes-level interface (``write_run_bytes``) when it has one;
        content, counters and head movement are bit-identical to the
        page-at-a-time path either way.
        """
        page_size = self.disk.page_size
        n_pages = max(1, -(-len(data) // page_size))
        needed = at_page + n_pages - self._n_pages
        if needed > 0:
            self.grow(needed)
        writer = getattr(self.disk, "write_run_bytes", None)
        if writer is None:  # pragma: no cover - non-bulk devices
            for i in range(n_pages):
                chunk = data[i * page_size : (i + 1) * page_size]
                self.write(at_page + i, chunk)
            return n_pages
        view = memoryview(data)
        checksums = getattr(self.disk, "checksums", None)
        at = 0
        for first_physical, run_pages in self._physical_runs(at_page, n_pages):
            take = min(len(data) - at, run_pages * page_size)
            writer(first_physical, view[at : at + take], run_pages)
            if checksums is not None:
                checksums.record_run(first_physical, view[at : at + take], run_pages)
            at += take
        return n_pages

    def read_stream(self, first_page: int, n_pages: int):
        """Read consecutive logical pages as one byte stream.

        Short pages are zero-padded, so the result is always exactly
        ``n_pages * page_size`` bytes.  Whole extents stream through
        the device's ``read_run_bytes`` — same bytes, same classified
        counters as reading page by page — and a range inside a single
        physical run is handed upward exactly as the device returned
        it: on arena devices that is one zero-copy ``memoryview``, end
        to end from the page store to the consumer.
        """
        if first_page < 0 or first_page + n_pages > self._n_pages:
            raise PageError(
                f"range [{first_page}, {first_page + n_pages}) out of "
                f"[0, {self._n_pages})"
            )
        reader = getattr(self.disk, "read_run_bytes", None)
        if reader is None:  # pragma: no cover - non-bulk devices
            return b"".join(
                bytes(self.read(i)).ljust(self.disk.page_size, b"\x00")
                for i in range(first_page, first_page + n_pages)
            )
        parts = [
            reader(first_physical, run_pages)
            for first_physical, run_pages in self._physical_runs(
                first_page, n_pages
            )
        ]
        return parts[0] if len(parts) == 1 else b"".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PagedFile(name={self.name!r}, pages={self._n_pages}, "
            f"extents={len(self._extents)})"
        )
