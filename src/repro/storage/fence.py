"""Per-page fence (zone-map) keys for spilled sorted runs.

A spilled run is a sorted record stream packed contiguously into a
:class:`repro.storage.pager.PagedFile`.  The sharded parallel merge
cascade (:mod:`repro.parallel.spill`) needs the position of every
splitter key inside every run to cut the key space into disjoint
partitions; carrying a full in-memory key *mirror* per run makes that
planning free but costs O(records) resident memory between passes.

A :class:`RunFence` is the classic zone map alternative: per record
page, the first and last key of the records *starting* on that page —
two keys per page instead of one per record.  It is written as a
footer after the run's record pages (``write_run_fence``), read back
with ordinary charged planning I/O (``read_run_fence``), and turned
into **exact** record-level cut positions by
:func:`fenced_cut_positions`:

1. the sorted per-page ``hi`` keys locate the single *boundary page*
   whose key range contains the splitter (records are globally sorted,
   so pages form ascending key ranges);
2. pages strictly before the boundary contribute all their records
   (their record index range is pure geometry —
   :func:`page_record_starts`);
3. one planning read of the boundary page resolves the splitter's
   offset within it with the shared ``side="left"`` rule.

Because step 3 uses the same ``searchsorted(..., side="left")`` on the
same record keys, the cuts are **identical** to
:func:`repro.parallel.merge.run_cut_positions` on the full mirror for
any splitter set — the invariant ``tests/test_fence.py`` pins — so the
sharded merge stream stays bit-identical to the serial stable merge
while planning touches one page per (run, splitter) instead of keeping
every key resident.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def page_record_starts(
    n_records: int, itemsize: int, page_size: int
) -> np.ndarray:
    """First record index starting on each record page, plus the end.

    Records are packed contiguously from byte zero, so the first record
    *starting* on page ``i`` is ``ceil(i * page_size / itemsize)``
    (records may straddle page boundaries; a record belongs to the page
    holding its first byte).  Returns ``n_record_pages + 1`` ascending
    indices clipped to ``n_records``; page ``i`` owns records
    ``[starts[i], starts[i + 1])``, possibly empty when a record spans
    whole pages.
    """
    n_pages = max(1, -(-n_records * itemsize // page_size))
    offsets = np.arange(n_pages + 1, dtype=np.int64) * page_size
    starts = -(-offsets // itemsize)
    return np.minimum(starts, n_records)


@dataclass(frozen=True)
class RunFence:
    """Per-page key bounds of one spilled sorted run.

    ``lo[i]`` / ``hi[i]`` are the first / last key of the records
    starting on record page ``i``; pages owning no record start carry
    their predecessor's ``hi`` so both arrays stay sorted.
    """

    n_records: int
    itemsize: int
    page_size: int
    lo: np.ndarray
    hi: np.ndarray

    @property
    def n_record_pages(self) -> int:
        return len(self.hi)

    @property
    def starts(self) -> np.ndarray:
        return page_record_starts(self.n_records, self.itemsize, self.page_size)


def build_run_fence(
    keys: np.ndarray, itemsize: int, page_size: int
) -> RunFence:
    """Fence a sorted key column as it is spilled (no I/O)."""
    keys = np.asarray(keys)
    if len(keys) == 0:
        raise ValueError("cannot fence an empty run")
    starts = page_record_starts(len(keys), itemsize, page_size)
    n_pages = len(starts) - 1
    lo = np.empty(n_pages, dtype=keys.dtype)
    hi = np.empty(n_pages, dtype=keys.dtype)
    prev = keys[0]
    for i in range(n_pages):
        if starts[i + 1] > starts[i]:
            lo[i] = keys[starts[i]]
            hi[i] = keys[starts[i + 1] - 1]
            prev = hi[i]
        else:  # a straddling record spans this whole page
            lo[i] = prev
            hi[i] = prev
    return RunFence(
        n_records=len(keys),
        itemsize=itemsize,
        page_size=page_size,
        lo=lo,
        hi=hi,
    )


def _footer_dtype(key_dtype: np.dtype) -> np.dtype:
    return np.dtype([("lo", key_dtype), ("hi", key_dtype)])


def write_run_fence(file, keys: np.ndarray, itemsize: int) -> RunFence:
    """Append the fence footer after the run's record pages.

    The footer is one ``(lo, hi)`` entry per record page, packed
    directly behind the records; its geometry is derivable from
    ``(n_records, itemsize, page_size)``, so no header is needed.
    Returns the in-memory fence (the writer keeps it for the pass that
    spilled the run; later passes re-read it from the footer).
    """
    fence = build_run_fence(keys, itemsize, file.disk.page_size)
    footer = np.empty(fence.n_record_pages, dtype=_footer_dtype(keys.dtype))
    footer["lo"] = fence.lo
    footer["hi"] = fence.hi
    file.write_stream(footer.tobytes(), at_page=fence.n_record_pages)
    return fence


def read_run_fence(
    file, n_records: int, rec_dtype: np.dtype
) -> RunFence:
    """Read the fence footer back (charged planning I/O on ``file``)."""
    key_dtype = rec_dtype["k"]
    itemsize = rec_dtype.itemsize
    page_size = file.disk.page_size
    starts = page_record_starts(n_records, itemsize, page_size)
    n_record_pages = len(starts) - 1
    entry = _footer_dtype(key_dtype)
    footer_bytes = n_record_pages * entry.itemsize
    footer_pages = -(-footer_bytes // page_size)
    blob = bytes(file.read_stream(n_record_pages, footer_pages))
    footer = np.frombuffer(blob[:footer_bytes], dtype=entry)
    return RunFence(
        n_records=n_records,
        itemsize=itemsize,
        page_size=page_size,
        lo=footer["lo"].copy(),
        hi=footer["hi"].copy(),
    )


def fenced_cut_positions(
    file, fence: RunFence, splitters: np.ndarray, rec_dtype: np.dtype
) -> np.ndarray:
    """Exact splitter cuts from the fence plus boundary-page reads.

    Same contract as :func:`repro.parallel.merge.run_cut_positions` on
    the run's full key mirror — ``len(splitters) + 2`` ascending record
    indices with the ``side="left"`` tie rule — but planned from two
    keys per page.  Each splitter resolves with at most one planning
    read (the boundary page, plus its straddle page when the last
    record starting on it crosses the page edge), and reads are cached
    per page, so splitters landing on the same page share one read.
    """
    starts = fence.starts
    page_size = fence.page_size
    itemsize = fence.itemsize
    key_dtype = rec_dtype["k"]
    cuts = np.empty(len(splitters) + 2, dtype=np.int64)
    cuts[0] = 0
    cuts[-1] = fence.n_records
    page_keys_cache: dict[int, np.ndarray] = {}

    def keys_on_page(p: int) -> np.ndarray:
        cached = page_keys_cache.get(p)
        if cached is not None:
            return cached
        r_lo, r_hi = int(starts[p]), int(starts[p + 1])
        byte_lo = r_lo * itemsize
        byte_hi = (r_hi - 1) * itemsize + key_dtype.itemsize
        first = byte_lo // page_size
        last = -(-byte_hi // page_size)
        blob = bytes(file.read_stream(first, last - first))
        at = byte_lo - first * page_size
        keys = np.empty(r_hi - r_lo, dtype=key_dtype)
        for i in range(r_hi - r_lo):
            keys[i] = np.frombuffer(
                blob[at : at + key_dtype.itemsize], dtype=key_dtype
            )[0]
            at += itemsize
        page_keys_cache[p] = keys
        return keys

    for s, splitter in enumerate(np.asarray(splitters, dtype=fence.hi.dtype)):
        # First page whose key range reaches the splitter; every earlier
        # page's records are all < splitter, every later page's >= it.
        p = int(np.searchsorted(fence.hi, splitter, side="left"))
        # Skip record-less pages forward: same hi, nothing to read.
        while p < fence.n_record_pages and starts[p + 1] == starts[p]:
            p += 1
        if p >= fence.n_record_pages:
            cuts[s + 1] = fence.n_records
            continue
        within = int(
            np.searchsorted(keys_on_page(p), splitter, side="left")
        )
        cuts[s + 1] = int(starts[p]) + within
    return cuts
