"""An LRU buffer pool over the simulated disk.

The buffer pool models the main-memory budget M of the disk access
model: pages cached in the pool are served without disk I/O, so an
index whose working set fits in the pool behaves as if it were in
memory, while a larger working set degrades to disk-bound behaviour —
the transition every experiment in the paper sweeps across.
"""

from __future__ import annotations

from collections import OrderedDict

from .disk import SimulatedDisk


class BufferPool:
    """Read cache with LRU eviction and write-through semantics.

    Parameters
    ----------
    disk:
        The underlying device.
    capacity_pages:
        Maximum number of cached pages.  Zero disables caching, which
        makes every access hit the disk (useful for worst-case runs).
    """

    def __init__(self, disk: SimulatedDisk, capacity_pages: int):
        if capacity_pages < 0:
            raise ValueError(f"capacity_pages must be >= 0, got {capacity_pages}")
        self.disk = disk
        self.capacity_pages = capacity_pages
        self._cache: OrderedDict[int, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def read(self, page_id: int) -> bytes:
        """Read through the cache; a miss costs one disk read."""
        if page_id in self._cache:
            self.hits += 1
            self._cache.move_to_end(page_id)
            return self._cache[page_id]
        self.misses += 1
        data = self.disk.read_page(page_id)
        self._admit(page_id, data)
        return data

    def write(self, page_id: int, data: bytes) -> None:
        """Write through to disk, updating the cached copy."""
        self.disk.write_page(page_id, data)
        self._admit(page_id, bytes(data))

    def _admit(self, page_id: int, data: bytes) -> None:
        if self.capacity_pages == 0:
            return
        self._cache[page_id] = data
        self._cache.move_to_end(page_id)
        while len(self._cache) > self.capacity_pages:
            self._cache.popitem(last=False)

    def invalidate(self, page_id: int | None = None) -> None:
        """Drop one page (or everything) from the cache."""
        if page_id is None:
            self._cache.clear()
        else:
            self._cache.pop(page_id, None)

    @property
    def cached_pages(self) -> int:
        return len(self._cache)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BufferPool(capacity={self.capacity_pages}, "
            f"cached={len(self._cache)}, hit_rate={self.hit_rate:.2f})"
        )
