"""An LRU buffer pool over the simulated disk (or one shard of it).

The buffer pool models the main-memory budget M of the disk access
model: pages cached in the pool are served without disk I/O, so an
index whose working set fits in the pool behaves as if it were in
memory, while a larger working set degrades to disk-bound behaviour —
the transition every experiment in the paper sweeps across.

Pools support ``with`` (detach on exit, even on error paths), so a
worker that fails mid-stream can never leave a pool bound to a shard
its session is about to reconcile::

    with BufferPool(shard, capacity_pages=8) as pool:
        ...  # every read through the pool lands on the shard

A pool is bound to exactly one device at a time — the shared
:class:`repro.storage.disk.SimulatedDisk` or, in a sharded session, one
worker's private :class:`repro.storage.disk.DiskShard`.  Pools are
*shard-scoped*: a parallel worker never shares its pool (or its cache
state) with another thread, so cache decisions — like the I/O
classification of the shard underneath — are a deterministic function
of that worker's own access sequence.  The explicit
:meth:`attach`/:meth:`detach` lifecycle replaces reaching for an
implicit global device: detaching drops the cache and disconnects the
pool, and re-attaching (to the parent after a session, or to a new
shard) starts from a cold cache, never from another domain's pages.

The pool is itself a device (it forwards ``page_size`` and
``allocate``), so a :class:`repro.storage.pager.PagedFile` view can be
attached directly to a pool to read a file through it.
"""

from __future__ import annotations

from collections import OrderedDict

from .disk import PageError, SimulatedDisk
from .integrity import verify_view


class BufferPool:
    """Read cache with LRU eviction and write-through semantics.

    Parameters
    ----------
    disk:
        The underlying device (a disk or a shard); may be ``None`` to
        create the pool detached and :meth:`attach` one later.
    capacity_pages:
        Maximum number of cached pages.  Zero disables caching, which
        makes every access hit the disk (useful for worst-case runs).
    verified_reads:
        Hash every page fetched from the device against the device's
        :class:`repro.storage.integrity.ChecksumMap` before admitting
        it, raising :class:`repro.storage.faults.CorruptionError` with
        page provenance instead of caching (and serving) flipped
        bytes.  Verification hashes the device's existing view — the
        zero-copy read path is preserved.  Cache hits are not
        re-hashed: admitted views were verified, and the lifecycle
        forbids out-of-band writes underneath a pool.
    """

    def __init__(
        self,
        disk: SimulatedDisk | None,
        capacity_pages: int,
        verified_reads: bool = False,
    ):
        if capacity_pages < 0:
            raise ValueError(f"capacity_pages must be >= 0, got {capacity_pages}")
        self.disk = disk
        self.capacity_pages = capacity_pages
        self.verified_reads = verified_reads
        # Full zero-padded pages; on arena devices these are zero-copy
        # views of the device arena (admission and eviction move
        # references, never payload bytes).
        self._cache: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        return self.disk is not None

    def attach(self, device) -> "BufferPool":
        """Bind the pool to ``device``, starting from a cold cache.

        Cached pages never survive a re-bind: a page id on one shard
        and the same id on the parent are the same physical page, but
        the cache of one I/O domain must not answer for another —
        that is exactly the implicit sharing the lifecycle forbids.
        """
        self.invalidate()
        self.disk = device
        return self

    def detach(self) -> None:
        """Disconnect from the device, dropping every cached page."""
        self.invalidate()
        self.disk = None

    def __enter__(self) -> "BufferPool":
        return self

    def __exit__(self, *exc_info) -> None:
        # Detaching on every exit path keeps error handling honest: a
        # worker that dies mid-merge cannot leave a pool holding a
        # reference (and cached pages) of a shard that is about to be
        # reconciled.  Detach is idempotent, so nested use is safe.
        self.detach()

    def _require_attached(self) -> SimulatedDisk:
        if self.disk is None:
            raise PageError("buffer pool is detached; attach a device first")
        return self.disk

    # ------------------------------------------------------------------
    # Device passthrough (so PagedFile views can bind to a pool)
    # ------------------------------------------------------------------
    @property
    def page_size(self) -> int:
        return self._require_attached().page_size

    def allocate(self, n_pages: int = 1) -> int:
        return self._require_attached().allocate(n_pages)

    @property
    def checksums(self):
        """The device's integrity sidecar (``None`` when disabled), so
        consumers writing through a pool record exactly as they would
        against the device directly."""
        return getattr(self._require_attached(), "checksums", None)

    def _verify(self, page_id: int, data):
        return verify_view(
            self.checksums, page_id, data, f"BufferPool({self.disk!r})"
        )

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def read(self, page_id: int):
        """Read through the cache; a miss costs one disk read.

        Returns a full zero-padded page, exactly as the device would:
        on arena devices both the miss and every later hit serve the
        same zero-copy view of the device arena — the cache holds
        views, it never copies page payloads.

        One caveat follows from holding views: a write that bypasses
        the pool straight to the device shows through an arena cache
        (the view is a window) but not through a dict-store cache (the
        cached bytes are a snapshot).  The lifecycle already forbids
        that pattern — a pool is its domain's only access path; use
        :meth:`invalidate` if an out-of-band write is ever unavoidable.
        """
        device = self._require_attached()
        if page_id in self._cache:
            self.hits += 1
            self._cache.move_to_end(page_id)
            return self._cache[page_id]
        self.misses += 1
        data = device.read_page(page_id)
        if self.verified_reads:
            self._verify(page_id, data)
        self._admit(page_id, data)
        return data

    # PagedFile calls the device vocabulary; route it through the cache.
    read_page = read

    def write(self, page_id: int, data) -> None:
        """Write through to disk, updating the cached copy.

        The admitted copy is the device's own page view when the
        device exposes one (zero-copy, already padded), so a later hit
        equals a later miss byte for byte.
        """
        device = self._require_attached()
        device.write_page(page_id, data)
        checksums = getattr(device, "checksums", None)
        if checksums is not None:
            checksums.record_page(page_id, data)
        self._admit(page_id, self._device_page(device, page_id, data))

    write_page = write

    @staticmethod
    def _device_page(device, page_id: int, data):
        """What a read of ``page_id`` would now return, without I/O."""
        view = getattr(device, "page_view", None)
        if view is not None:
            return view(page_id)
        return bytes(data).ljust(device.page_size, b"\x00")

    # ------------------------------------------------------------------
    # Bytes-level streaming (the PagedFile fast path, cache-aware)
    # ------------------------------------------------------------------
    def read_run_bytes(self, first_page: int, n_pages: int):
        """Bulk read through the cache, padded to whole pages.

        Hits and misses are counted page by page exactly as
        :meth:`read` would, consecutive misses are fetched from the
        device in one bulk call (their classification equals the
        per-page sequence: first access against the head, the rest
        sequential), and admissions happen in ascending page order so
        the LRU state matches the per-page path.  Nothing is copied on
        the way through: a fully-missed run is passed upward exactly as
        the device returned it (one view on arena devices), per-page
        admissions are sub-views of that same buffer, and cache hits
        contribute the cached full-page views directly.
        """
        if n_pages <= 0:
            return b""
        device = self._require_attached()
        page_size = device.page_size
        bulk = getattr(device, "read_run_bytes", None)
        cache = self._cache
        parts: list = []
        page = first_page
        end = first_page + n_pages
        while page < end:
            if page in cache:
                self.hits += 1
                cache.move_to_end(page)
                parts.append(cache[page])
                page += 1
                continue
            stop = page + 1
            while stop < end and stop not in cache:
                stop += 1
            self.misses += stop - page
            if bulk is not None:
                blob = bulk(page, stop - page)
                # Native slicing admits the right thing for the blob's
                # provenance: memoryview blobs (arena) slice into
                # zero-copy sub-views of storage the device owns
                # anyway; bytes blobs (joined temporaries) slice into
                # per-page copies, so a cached page never pins the
                # whole transient run buffer.
                for i in range(stop - page):
                    chunk = blob[i * page_size : (i + 1) * page_size]
                    if self.verified_reads:
                        self._verify(page + i, chunk)
                    self._admit(page + i, chunk)
                parts.append(blob)
            else:  # pragma: no cover - devices without the bulk interface
                for p in range(page, stop):
                    data = bytes(device.read_page(p)).ljust(
                        page_size, b"\x00"
                    )
                    if self.verified_reads:
                        self._verify(p, data)
                    self._admit(p, data)
                    parts.append(data)
            page = stop
        return parts[0] if len(parts) == 1 else b"".join(parts)

    def write_run_bytes(self, first_page: int, data, n_pages: int) -> None:
        """Bulk write-through; cached copies match the per-page path."""
        if n_pages <= 0:
            return
        device = self._require_attached()
        page_size = device.page_size
        bulk = getattr(device, "write_run_bytes", None)
        view = memoryview(data)
        if bulk is not None:
            bulk(first_page, view, n_pages)
            checksums = getattr(device, "checksums", None)
            if checksums is not None:
                checksums.record_run(first_page, view, n_pages)
            for i in range(n_pages):
                self._admit(
                    first_page + i,
                    self._device_page(
                        device,
                        first_page + i,
                        view[i * page_size : (i + 1) * page_size],
                    ),
                )
        else:  # pragma: no cover - devices without the bulk interface
            for i in range(n_pages):
                self.write(
                    first_page + i,
                    view[i * page_size : (i + 1) * page_size],
                )

    def _admit(self, page_id: int, data) -> None:
        if self.capacity_pages == 0:
            return
        self._cache[page_id] = data
        self._cache.move_to_end(page_id)
        while len(self._cache) > self.capacity_pages:
            self._cache.popitem(last=False)

    def invalidate(self, page_id: int | None = None) -> None:
        """Drop one page (or everything) from the cache."""
        if page_id is None:
            self._cache.clear()
        else:
            self._cache.pop(page_id, None)

    @property
    def cached_pages(self) -> int:
        return len(self._cache)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BufferPool(capacity={self.capacity_pages}, "
            f"cached={len(self._cache)}, hit_rate={self.hit_rate:.2f})"
        )
