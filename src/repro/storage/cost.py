"""Disk access model cost accounting (Aggarwal & Vitter).

The Coconut paper analyzes every algorithm in the disk access model:
runtime is measured in disk blocks transferred between main memory and
secondary storage, with random block accesses costing far more than
sequential ones on the rotating media used in the paper's evaluation.
This module provides the cost model that converts counted page accesses
into simulated time, so that benchmark results can be compared in the
same currency the paper reasons in.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Converts classified page accesses into simulated milliseconds.

    Defaults are calibrated to a 7200 RPM SATA drive like the ones in the
    paper's testbed: a random access pays a full seek plus rotational
    latency (~8 ms), while a sequential page transfer is limited by the
    ~150 MB/s streaming bandwidth (8 KiB page -> ~0.05 ms).
    """

    random_read_ms: float = 8.0
    random_write_ms: float = 8.0
    sequential_read_ms: float = 0.05
    sequential_write_ms: float = 0.05

    def io_ms(self, stats: "DiskStats") -> float:
        """Simulated milliseconds spent on the accesses in ``stats``."""
        return (
            stats.random_reads * self.random_read_ms
            + stats.random_writes * self.random_write_ms
            + stats.sequential_reads * self.sequential_read_ms
            + stats.sequential_writes * self.sequential_write_ms
        )


@dataclass(frozen=True)
class QueryCostModel:
    """Calibrated CPU-side costs of the batched query engine.

    The disk access model (:class:`CostModel`) prices page transfers;
    this model prices the *compute* the query planner trades those
    transfers against: lower-bound cells, record refinement, and the
    fixed overhead of fanning work out to a pool.  Defaults are
    conservative laptop-class numbers; ``repro.parallel.sched.
    calibrate_query_costs`` measures the kernel rates on the running
    host (pool-overhead and IPC terms keep their documented defaults —
    measuring a process-pool spawn costs more than the plans it would
    improve).
    """

    #: One ``mindist_paa_to_words`` cell — a (query, record) lower
    #: bound in the shared SIMS scan.
    mindist_cell_us: float = 0.02
    #: One fetched record pushed through the fused early-abandon
    #: refine kernel.
    refine_record_us: float = 1.0
    #: Spawning + joining one task on a thread pool.
    thread_task_us: float = 200.0
    #: Spawning + joining one task on a process pool (fork + import).
    process_task_us: float = 15_000.0
    #: Pickling + shipping one MiB of payload to a process pool.
    ship_us_per_mib: float = 9_000.0

    def as_dict(self) -> dict:
        return {
            "mindist_cell_us": self.mindist_cell_us,
            "refine_record_us": self.refine_record_us,
            "thread_task_us": self.thread_task_us,
            "process_task_us": self.process_task_us,
            "ship_us_per_mib": self.ship_us_per_mib,
        }


#: The planner's fallback when no calibration has been run.
DEFAULT_QUERY_COST = QueryCostModel()


#: A cost model where random and sequential accesses cost the same.
#: Useful for ablations that isolate the effect of contiguity.
UNIFORM_COST = CostModel(
    random_read_ms=0.05,
    random_write_ms=0.05,
    sequential_read_ms=0.05,
    sequential_write_ms=0.05,
)

#: An SSD-like cost model (random penalty ~2x, not ~160x).
SSD_COST = CostModel(
    random_read_ms=0.10,
    random_write_ms=0.12,
    sequential_read_ms=0.04,
    sequential_write_ms=0.05,
)


@dataclass
class DiskStats:
    """Counters for classified page accesses and transferred bytes."""

    sequential_reads: int = 0
    random_reads: int = 0
    sequential_writes: int = 0
    random_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def copy(self) -> "DiskStats":
        return DiskStats(
            self.sequential_reads,
            self.random_reads,
            self.sequential_writes,
            self.random_writes,
            self.bytes_read,
            self.bytes_written,
        )

    def __sub__(self, other: "DiskStats") -> "DiskStats":
        return DiskStats(
            self.sequential_reads - other.sequential_reads,
            self.random_reads - other.random_reads,
            self.sequential_writes - other.sequential_writes,
            self.random_writes - other.random_writes,
            self.bytes_read - other.bytes_read,
            self.bytes_written - other.bytes_written,
        )

    def __add__(self, other: "DiskStats") -> "DiskStats":
        return DiskStats(
            self.sequential_reads + other.sequential_reads,
            self.random_reads + other.random_reads,
            self.sequential_writes + other.sequential_writes,
            self.random_writes + other.random_writes,
            self.bytes_read + other.bytes_read,
            self.bytes_written + other.bytes_written,
        )

    @property
    def total_reads(self) -> int:
        return self.sequential_reads + self.random_reads

    @property
    def total_writes(self) -> int:
        return self.sequential_writes + self.random_writes

    @property
    def total_ios(self) -> int:
        return self.total_reads + self.total_writes

    def io_ms(self, cost_model: CostModel | None = None) -> float:
        """Simulated I/O time for these accesses under ``cost_model``."""
        return (cost_model or CostModel()).io_ms(self)

    def as_dict(self) -> dict:
        return {
            "sequential_reads": self.sequential_reads,
            "random_reads": self.random_reads,
            "sequential_writes": self.sequential_writes,
            "random_writes": self.random_writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }
