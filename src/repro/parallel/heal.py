"""Self-healing execution of parallel I/O plans.

The parallel engines (:mod:`repro.parallel.query`,
:mod:`repro.parallel.spill`) run their partitions inside a
:class:`repro.storage.disk.ShardedDisk` session.  When a worker raises
an injected device fault (:mod:`repro.storage.faults`), the session
``__exit__`` *aborts* — every shard's private state is discarded and
the parent device is unfenced with its head untouched — so a failed
attempt is invisible: it contributes nothing to the parent's pages or
reconciled :class:`~repro.storage.cost.DiskStats`.

That abort guarantee is what makes retry sound.  :func:`run_self_healing`
layers the policy on top:

* **transient** faults (:class:`~repro.storage.faults.TransientIOError`)
  are retried up to ``retries`` times with capped exponential backoff —
  a fresh attempt re-issues the same deterministic I/O plan, so a
  successful retry is bit-identical to a run that never faulted;
* **permanent / corruption / crash** faults
  (:class:`~repro.storage.faults.PermanentIOError`,
  :class:`~repro.storage.faults.CorruptionError`,
  :class:`~repro.storage.faults.DeviceCrash`) skip straight to the
  ``fallback`` — retrying a deterministic plan against a deterministic
  fault would fail identically;
* when the ``fallback`` is ``None`` the last fault propagates and the
  *caller* degrades (e.g. ``CoconutLSM`` falls back to its serial
  compaction when :func:`repro.parallel.spill.sharded_spill_merge`
  gives up).

Degradation targets are the serial engines, whose answers, tie order
and stats are the oracle the parallel engines are property-tested
against — so healing never changes *what* is computed, only *how*.

Fault seams
-----------
The engines accept a ``wrap_device(shard, partition, attempt)``
callable and route every partition's I/O through its return value.
Tests pass a factory building :class:`~repro.storage.faults.
FaultyDevice` wrappers; because the factory is called afresh per
attempt, each attempt's fault plans restart at operation index zero —
the final reconciled stats are a pure function of the *successful*
attempt's plan, identical under any pool interleaving.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass

from ..storage.faults import CorruptionError, FaultError, TransientIOError

__all__ = [
    "HEAL_RETRIES",
    "HEAL_BACKOFF_S",
    "HEAL_BACKOFF_CAP_S",
    "RetryPolicy",
    "HealReport",
    "run_self_healing",
]

logger = logging.getLogger("repro.parallel")

#: Transient-fault retries before degrading (attempts = retries + 1).
HEAL_RETRIES = 2
#: Base backoff before the first retry; doubles per retry.
HEAL_BACKOFF_S = 0.002
#: Ceiling on any single backoff sleep.
HEAL_BACKOFF_CAP_S = 0.05


@dataclass(frozen=True)
class RetryPolicy:
    """Explicit retry/backoff policy for :func:`run_self_healing`.

    ``retries`` transient retries (attempts = retries + 1), capped
    exponential backoff starting at ``backoff_s`` and never exceeding
    ``backoff_cap_s`` per sleep.  Frozen so a policy can be shared
    between the service front-end, the LSM compaction seam and the
    query engines without aliasing surprises.
    """

    retries: int = HEAL_RETRIES
    backoff_s: float = HEAL_BACKOFF_S
    backoff_cap_s: float = HEAL_BACKOFF_CAP_S

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be >= 0")

    def delay(self, retry_index: int) -> float:
        """Sleep before retry ``retry_index`` (0-based): capped doubling."""
        return min(self.backoff_cap_s, self.backoff_s * (2 ** retry_index))


@dataclass
class HealReport:
    """Mutable accumulator of healing activity across calls.

    Engines add to a caller-provided report so a long-lived consumer
    (the online service's :class:`~repro.service.stats.ServiceStats`)
    can export attempt counts without re-deriving them from logs.
    """

    n_calls: int = 0
    n_attempts: int = 0
    n_retries: int = 0
    n_transient_faults: int = 0
    n_fatal_faults: int = 0
    #: Of the fatal faults, how many were integrity failures
    #: (:class:`~repro.storage.faults.CorruptionError`) — a verified
    #: read refusing to serve flipped bytes, distinct from a device
    #: that merely died.  Subset of ``n_fatal_faults``.
    n_corruption_faults: int = 0
    n_degraded: int = 0

    def merge(self, other: "HealReport") -> None:
        self.n_calls += other.n_calls
        self.n_attempts += other.n_attempts
        self.n_retries += other.n_retries
        self.n_transient_faults += other.n_transient_faults
        self.n_fatal_faults += other.n_fatal_faults
        self.n_corruption_faults += other.n_corruption_faults
        self.n_degraded += other.n_degraded

    def as_dict(self) -> dict:
        return {
            "calls": self.n_calls,
            "attempts": self.n_attempts,
            "retries": self.n_retries,
            "transient_faults": self.n_transient_faults,
            "fatal_faults": self.n_fatal_faults,
            "corruption_faults": self.n_corruption_faults,
            "degraded": self.n_degraded,
        }


def run_self_healing(
    attempt,
    fallback=None,
    retries: "int | None" = None,
    backoff_s: "float | None" = None,
    backoff_cap_s: "float | None" = None,
    label: str = "parallel plan",
    policy: "RetryPolicy | None" = None,
    report: "HealReport | None" = None,
):
    """Run ``attempt(attempt_index)``, retrying transients, else degrade.

    ``attempt`` must be restartable: each call re-executes the full
    plan from scratch against a clean parent (the aborted session of a
    failed attempt leaves no trace).  ``fallback()`` — when given — is
    invoked after a non-transient fault or once transient retries are
    exhausted; with no fallback the last fault is re-raised.

    The policy may be given as an explicit :class:`RetryPolicy` or via
    the legacy ``retries``/``backoff_s``/``backoff_cap_s`` keywords
    (which override the matching policy fields).  When ``report`` is
    given, attempt/retry/degradation counts are accumulated onto it.

    Only :class:`~repro.storage.faults.FaultError` is healed.  Any
    other exception (a bug, a bad argument) propagates immediately:
    masking it behind a retry or a silent serial fallback would hide
    real defects.
    """
    base = policy if policy is not None else RetryPolicy()
    if retries is not None or backoff_s is not None or backoff_cap_s is not None:
        base = RetryPolicy(
            retries=base.retries if retries is None else retries,
            backoff_s=base.backoff_s if backoff_s is None else backoff_s,
            backoff_cap_s=(
                base.backoff_cap_s if backoff_cap_s is None else backoff_cap_s
            ),
        )
    if report is not None:
        report.n_calls += 1
    last: "FaultError | None" = None
    for index in range(base.retries + 1):
        if report is not None:
            report.n_attempts += 1
            if index:
                report.n_retries += 1
        try:
            return attempt(index)
        except TransientIOError as error:
            last = error
            if report is not None:
                report.n_transient_faults += 1
            logger.warning(
                "%s: transient device fault on attempt %d/%d: %s",
                label, index + 1, base.retries + 1, error,
            )
            if index < base.retries:
                time.sleep(base.delay(index))
        except FaultError as error:
            last = error
            if report is not None:
                report.n_fatal_faults += 1
                if isinstance(error, CorruptionError):
                    report.n_corruption_faults += 1
            logger.warning("%s: non-retryable device fault: %s", label, error)
            break
    if fallback is None:
        raise last
    if report is not None:
        report.n_degraded += 1
    logger.warning("%s: degrading to the serial engine", label)
    return fallback()
