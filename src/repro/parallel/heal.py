"""Self-healing execution of parallel I/O plans.

The parallel engines (:mod:`repro.parallel.query`,
:mod:`repro.parallel.spill`) run their partitions inside a
:class:`repro.storage.disk.ShardedDisk` session.  When a worker raises
an injected device fault (:mod:`repro.storage.faults`), the session
``__exit__`` *aborts* — every shard's private state is discarded and
the parent device is unfenced with its head untouched — so a failed
attempt is invisible: it contributes nothing to the parent's pages or
reconciled :class:`~repro.storage.cost.DiskStats`.

That abort guarantee is what makes retry sound.  :func:`run_self_healing`
layers the policy on top:

* **transient** faults (:class:`~repro.storage.faults.TransientIOError`)
  are retried up to ``retries`` times with capped exponential backoff —
  a fresh attempt re-issues the same deterministic I/O plan, so a
  successful retry is bit-identical to a run that never faulted;
* **permanent / corruption / crash** faults
  (:class:`~repro.storage.faults.PermanentIOError`,
  :class:`~repro.storage.faults.CorruptionError`,
  :class:`~repro.storage.faults.DeviceCrash`) skip straight to the
  ``fallback`` — retrying a deterministic plan against a deterministic
  fault would fail identically;
* when the ``fallback`` is ``None`` the last fault propagates and the
  *caller* degrades (e.g. ``CoconutLSM`` falls back to its serial
  compaction when :func:`repro.parallel.spill.sharded_spill_merge`
  gives up).

Degradation targets are the serial engines, whose answers, tie order
and stats are the oracle the parallel engines are property-tested
against — so healing never changes *what* is computed, only *how*.

Fault seams
-----------
The engines accept a ``wrap_device(shard, partition, attempt)``
callable and route every partition's I/O through its return value.
Tests pass a factory building :class:`~repro.storage.faults.
FaultyDevice` wrappers; because the factory is called afresh per
attempt, each attempt's fault plans restart at operation index zero —
the final reconciled stats are a pure function of the *successful*
attempt's plan, identical under any pool interleaving.
"""

from __future__ import annotations

import logging
import time

from ..storage.faults import FaultError, TransientIOError

__all__ = [
    "HEAL_RETRIES",
    "HEAL_BACKOFF_S",
    "HEAL_BACKOFF_CAP_S",
    "run_self_healing",
]

logger = logging.getLogger("repro.parallel")

#: Transient-fault retries before degrading (attempts = retries + 1).
HEAL_RETRIES = 2
#: Base backoff before the first retry; doubles per retry.
HEAL_BACKOFF_S = 0.002
#: Ceiling on any single backoff sleep.
HEAL_BACKOFF_CAP_S = 0.05


def run_self_healing(
    attempt,
    fallback=None,
    retries: int = HEAL_RETRIES,
    backoff_s: float = HEAL_BACKOFF_S,
    backoff_cap_s: float = HEAL_BACKOFF_CAP_S,
    label: str = "parallel plan",
):
    """Run ``attempt(attempt_index)``, retrying transients, else degrade.

    ``attempt`` must be restartable: each call re-executes the full
    plan from scratch against a clean parent (the aborted session of a
    failed attempt leaves no trace).  ``fallback()`` — when given — is
    invoked after a non-transient fault or once transient retries are
    exhausted; with no fallback the last fault is re-raised.

    Only :class:`~repro.storage.faults.FaultError` is healed.  Any
    other exception (a bug, a bad argument) propagates immediately:
    masking it behind a retry or a silent serial fallback would hide
    real defects.
    """
    last: "FaultError | None" = None
    for index in range(retries + 1):
        try:
            return attempt(index)
        except TransientIOError as error:
            last = error
            logger.warning(
                "%s: transient device fault on attempt %d/%d: %s",
                label, index + 1, retries + 1, error,
            )
            if index < retries:
                time.sleep(min(backoff_cap_s, backoff_s * (2 ** index)))
        except FaultError as error:
            last = error
            logger.warning("%s: non-retryable device fault: %s", label, error)
            break
    if fallback is None:
        raise last
    logger.warning("%s: degrading to the serial engine", label)
    return fallback()
