"""Parallel build and batched query execution for the Coconut indexes.

The paper's argument is that sortable summarizations make index
construction "scale with the hardware": summarization is embarrassingly
parallel per chunk, and an external sort consumes presorted runs from
any number of producers.  This package supplies both halves:

* :mod:`repro.parallel.summarize` — a chunked, multi-worker
  ``series -> PAA -> SAX -> invSAX`` pipeline whose presorted chunk
  runs feed :meth:`repro.storage.ExternalSorter.sort_runs` directly,
  so bulk-loading uses all cores while producing bit-identical indexes
  to the serial path.
* :mod:`repro.parallel.merge` — a range-partitioned parallel merge of
  *resident* presorted runs: splitter keys sampled from run boundaries
  cut every run into disjoint key ranges that workers merge
  independently, with output bit-identical to the serial merge for any
  worker count.
* :mod:`repro.parallel.spill` — the same idea for *file-backed* runs
  on the sharded storage layer: each partition streams its slices of
  the spilled run files through a private
  :class:`repro.storage.DiskShard` (own head, own stats) and writes a
  disjoint extent of the output run — or, on the cascade's final pass,
  streams straight to the consumer.  Parallelizes the spilled merge
  cascade of the external sort and Coconut-LSM compaction, with
  deterministic, serially-replayable I/O accounting.
* :mod:`repro.parallel.batch` — a batched exact-kNN executor that
  answers many queries in one skip-sequential SIMS pass, sharing the
  summary scan and every fetched page across the whole batch, plus a
  batched *approximate* executor that groups queries by target leaf so
  each leaf is read once per batch.
* :mod:`repro.parallel.heal` — self-healing execution of the parallel
  plans: transient injected device faults retry with capped backoff on
  a clean (aborted) session, everything else degrades to the serial
  engines — whose answers and stats are the oracle the parallel paths
  are property-tested against, so healing never changes the result.
* :mod:`repro.parallel.query` — the multi-worker version of the
  batched exact engine: the lower-bound scan is range-partitioned
  across a pool and the record fetches stream through per-worker
  read-only :class:`repro.storage.DiskShard` domains, with answers
  (ids, distances, tie order) bit-identical to the serial batched
  engine for any worker count and reconciled
  :class:`repro.storage.DiskStats` bit-identical to the inline serial
  replay (``pool_kind="serial"``, with ``bound_sharing="off"``).
* :mod:`repro.parallel.sched` — the adaptive scheduler on top: a
  shared best-k bound board that lets exact workers prune against the
  global state of the batch (answers still bit-identical for any
  publish interleaving), range-partitioned parallel *approximate*
  batches, and a calibrated cost-model planner
  (:func:`repro.parallel.sched.plan_query_batch`) that picks worker
  counts, pool kinds and fetch-partition floors per batch — with
  ``scheduler="fixed"`` as the escape hatch reproducing the
  unscheduled engine exactly.

All are wired into the index classes (``workers=`` on the Coconut
constructors, ``query_batch(query_workers=)`` on every index) and into
the benchmark CLI as ``--workers`` / ``--batch``.
"""

from .batch import approx_query_batch, batched_exact_knn, build_batch_report
from .heal import (
    HEAL_BACKOFF_CAP_S,
    HEAL_BACKOFF_S,
    HEAL_RETRIES,
    HealReport,
    RetryPolicy,
    run_self_healing,
)
from .merge import (
    AUTO_POOL_THREAD_BYTES,
    choose_pool_kind,
    choose_pool_kind_for_bytes,
    parallel_merge_runs,
    partition_runs,
    run_cut_positions,
    sample_splitters,
)
from .query import (
    parallel_batched_exact_knn,
    parallel_lower_bound_scan,
    parallel_serial_scan_batch,
    parallel_sims_query_batch,
    partition_ranges,
)
from .sched import (
    PlanReport,
    SharedBoundBoard,
    calibrate_query_costs,
    parallel_approx_batch,
    plan_query_batch,
    run_sims_query_batch,
)
from .spill import (
    ShardedMergeResult,
    sharded_spill_merge,
    sharded_stream_merge,
    stream_run_file,
)
from .summarize import (
    DEFAULT_CHUNK_SERIES,
    ParallelSummarizer,
    parallel_invsax_keys,
    resolve_workers,
    summarize_chunk,
    summarize_presorted_runs,
)

__all__ = [
    "AUTO_POOL_THREAD_BYTES",
    "DEFAULT_CHUNK_SERIES",
    "HEAL_BACKOFF_CAP_S",
    "HEAL_BACKOFF_S",
    "HEAL_RETRIES",
    "HealReport",
    "ParallelSummarizer",
    "PlanReport",
    "RetryPolicy",
    "ShardedMergeResult",
    "SharedBoundBoard",
    "approx_query_batch",
    "batched_exact_knn",
    "build_batch_report",
    "calibrate_query_costs",
    "choose_pool_kind",
    "choose_pool_kind_for_bytes",
    "parallel_approx_batch",
    "parallel_batched_exact_knn",
    "parallel_invsax_keys",
    "parallel_lower_bound_scan",
    "parallel_merge_runs",
    "parallel_serial_scan_batch",
    "parallel_sims_query_batch",
    "partition_ranges",
    "partition_runs",
    "plan_query_batch",
    "resolve_workers",
    "run_sims_query_batch",
    "run_cut_positions",
    "run_self_healing",
    "sample_splitters",
    "sharded_spill_merge",
    "sharded_stream_merge",
    "stream_run_file",
    "summarize_chunk",
    "summarize_presorted_runs",
]
