"""Parallel build and batched query execution for the Coconut indexes.

The paper's argument is that sortable summarizations make index
construction "scale with the hardware": summarization is embarrassingly
parallel per chunk, and an external sort consumes presorted runs from
any number of producers.  This package supplies both halves:

* :mod:`repro.parallel.summarize` — a chunked, multi-worker
  ``series -> PAA -> SAX -> invSAX`` pipeline whose presorted chunk
  runs feed :meth:`repro.storage.ExternalSorter.sort_runs` directly,
  so bulk-loading uses all cores while producing bit-identical indexes
  to the serial path.
* :mod:`repro.parallel.merge` — a range-partitioned parallel merge of
  *resident* presorted runs: splitter keys sampled from run boundaries
  cut every run into disjoint key ranges that workers merge
  independently, with output bit-identical to the serial merge for any
  worker count.
* :mod:`repro.parallel.spill` — the same idea for *file-backed* runs
  on the sharded storage layer: each partition streams its slices of
  the spilled run files through a private
  :class:`repro.storage.DiskShard` (own head, own stats) and writes a
  disjoint extent of the output run — or, on the cascade's final pass,
  streams straight to the consumer.  Parallelizes the spilled merge
  cascade of the external sort and Coconut-LSM compaction, with
  deterministic, serially-replayable I/O accounting.
* :mod:`repro.parallel.batch` — a batched exact-kNN executor that
  answers many queries in one skip-sequential SIMS pass, sharing the
  summary scan and every fetched page across the whole batch, plus a
  batched *approximate* executor that groups queries by target leaf so
  each leaf is read once per batch.

All are wired into the index classes (``workers=`` on the Coconut
constructors, ``query_batch()`` on every index) and into the benchmark
CLI as ``--workers`` / ``--batch``.
"""

from .batch import approx_query_batch, batched_exact_knn, build_batch_report
from .merge import (
    choose_pool_kind,
    parallel_merge_runs,
    partition_runs,
    run_cut_positions,
    sample_splitters,
)
from .spill import (
    ShardedMergeResult,
    sharded_spill_merge,
    sharded_stream_merge,
    stream_run_file,
)
from .summarize import (
    DEFAULT_CHUNK_SERIES,
    ParallelSummarizer,
    parallel_invsax_keys,
    resolve_workers,
    summarize_chunk,
    summarize_presorted_runs,
)

__all__ = [
    "DEFAULT_CHUNK_SERIES",
    "ParallelSummarizer",
    "ShardedMergeResult",
    "approx_query_batch",
    "batched_exact_knn",
    "build_batch_report",
    "choose_pool_kind",
    "parallel_invsax_keys",
    "parallel_merge_runs",
    "partition_runs",
    "resolve_workers",
    "run_cut_positions",
    "sample_splitters",
    "sharded_spill_merge",
    "sharded_stream_merge",
    "stream_run_file",
    "summarize_chunk",
    "summarize_presorted_runs",
]
