"""Chunked, multi-worker summarization: series -> PAA -> SAX -> invSAX.

Summarizing a collection is embarrassingly parallel: each chunk of
series maps to invSAX keys independently of every other chunk.  This
module fans chunks out to a pool of workers and returns the results in
input order, so the downstream consumer sees exactly the stream the
serial scan would have produced — byte-identical keys, in the same
sequence, for any chunk size and worker count.

Workers additionally return each chunk's stable sort order, turning
every chunk into a presorted run that
:meth:`repro.storage.ExternalSorter.sort_runs` merges without
re-sorting: the external sort's partition phase is thereby fed by all
cores at once, which is where the bulk-loading speedup comes from.

Worker pools and determinism
----------------------------
``kind="process"`` (the default) uses a ``ProcessPoolExecutor`` so the
NumPy work runs on separate cores; it falls back to threads when
process pools are unavailable (restricted sandboxes).  The pipeline
contains no randomness and no shared mutable state, so results are
identical for every ``workers`` / ``chunk_size`` / pool-kind choice —
a property the test suite checks exhaustively.

Choosing ``workers``: ``None`` or ``0`` means "all cores"
(``os.cpu_count()``); ``1`` runs inline with no pool at all (zero
overhead, the serial path).  Chunks should be large enough that the
per-chunk NumPy work dominates the inter-process transfer of the chunk
(thousands of series); :data:`DEFAULT_CHUNK_SERIES` is a good default.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Iterator

import numpy as np

from ..core.invsax import interleave_words
from ..summaries.sax import SAXConfig, sax_words

#: Default series per chunk: big enough that SAX work dominates IPC.
DEFAULT_CHUNK_SERIES = 4096


def resolve_workers(workers: int | None) -> int:
    """``None``/``0`` -> all cores; otherwise at least 1."""
    if workers is None or workers <= 0:
        return os.cpu_count() or 1
    return int(workers)


def summarize_chunk(
    block: np.ndarray, config: SAXConfig
) -> tuple[np.ndarray, np.ndarray]:
    """One chunk's invSAX keys plus its stable sort order.

    This is the unit of work shipped to a pool worker; it must stay a
    module-level function so process pools can pickle it.
    """
    keys = interleave_words(sax_words(block, config), config)
    return keys, np.argsort(keys, kind="stable")


class ParallelSummarizer:
    """Order-preserving fan-out of summarization chunks to a pool.

    Usable as a context manager; otherwise call :meth:`close` when
    done so pool processes do not outlive the build.
    """

    def __init__(
        self,
        config: SAXConfig,
        workers: int | None = None,
        chunk_size: int | None = None,
        kind: str = "process",
    ):
        if kind not in ("process", "thread", "serial"):
            raise ValueError(f"unknown pool kind {kind!r}")
        self.config = config
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size or DEFAULT_CHUNK_SERIES
        if self.chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.kind = kind
        self._executor: Executor | None = None
        self._started = False

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> Executor | None:
        if self._started:
            return self._executor
        self._started = True
        if self.workers <= 1 or self.kind == "serial":
            self._executor = None
        elif self.kind == "thread":
            self._executor = ThreadPoolExecutor(max_workers=self.workers)
        else:
            try:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, ValueError):  # pragma: no cover - sandboxes
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._started = False

    def __enter__(self) -> "ParallelSummarizer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def map_blocks(
        self, blocks: Iterable[tuple[int, np.ndarray]]
    ) -> Iterator[tuple[int, np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(start, block, keys, order)`` in input order.

        ``blocks`` is an iterable of ``(first_index, block)`` pairs as
        produced by :meth:`repro.storage.RawSeriesFile.scan`.  At most
        ``2 * workers`` chunks are in flight, bounding memory while
        keeping every worker busy.
        """
        executor = self._ensure_executor()
        if executor is None:
            for start, block in blocks:
                keys, order = summarize_chunk(block, self.config)
                yield start, block, keys, order
            return
        window = max(2, 2 * self.workers)
        pending: deque = deque()
        iterator = iter(blocks)
        exhausted = False
        while True:
            while not exhausted and len(pending) < window:
                try:
                    start, block = next(iterator)
                except StopIteration:
                    exhausted = True
                    break
                future = executor.submit(summarize_chunk, block, self.config)
                pending.append((start, block, future))
            if not pending:
                return
            start, block, future = pending.popleft()
            keys, order = future.result()
            yield start, block, keys, order

    def iter_chunks(
        self, data: np.ndarray
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Split an in-memory batch into ``chunk_size`` blocks."""
        data = np.asarray(data)
        for at in range(0, len(data), self.chunk_size):
            yield at, data[at : at + self.chunk_size]

    def keys(self, data: np.ndarray) -> np.ndarray:
        """invSAX keys of a batch, byte-identical to the serial path."""
        parts = [keys for _, _, keys, _ in self.map_blocks(self.iter_chunks(data))]
        if not parts:
            return np.empty(0, dtype=self.config.key_dtype)
        return np.concatenate(parts)


def summarize_presorted_runs(
    raw,
    config: SAXConfig,
    materialized: bool,
    workers: int | None = None,
    chunk_size: int | None = None,
    kind: str = "process",
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Scan a raw file into presorted (keys, payloads) chunk runs.

    The scan (and its simulated I/O) happens in the calling process;
    chunks are summarized and presorted on pool workers; payloads —
    offsets, plus the series themselves for materialized indexes — are
    permuted locally.  Each run is a contiguous input slice in
    stable-sorted order, which is exactly what
    :meth:`repro.storage.ExternalSorter.sort_runs` needs to produce a
    stream bit-identical to the serial sort.
    """
    from ..core.coconut_tree import payload_dtype

    pay_dtype = payload_dtype(raw.length, materialized)
    runs: list[tuple[np.ndarray, np.ndarray]] = []
    with ParallelSummarizer(config, workers, chunk_size, kind=kind) as pool:
        blocks = raw.scan(chunk_series=pool.chunk_size)
        for start, block, keys, order in pool.map_blocks(blocks):
            payload = np.zeros(len(block), dtype=pay_dtype)
            payload["off"] = start + order
            if materialized:
                payload["series"] = block[order]
            runs.append((keys[order], payload))
    return runs


def parallel_invsax_keys(
    batch: np.ndarray,
    config: SAXConfig,
    workers: int | None = None,
    chunk_size: int | None = None,
    kind: str = "process",
) -> np.ndarray:
    """Drop-in parallel equivalent of :func:`repro.core.invsax_keys`."""
    with ParallelSummarizer(config, workers, chunk_size, kind=kind) as pool:
        return pool.keys(batch)
