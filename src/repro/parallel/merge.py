"""Parallel range-partitioned merging of presorted runs.

Merging sorted runs parallelizes by *key range*, not by run: sample
splitter keys from the runs, cut every run at those keys (each run is
sorted, so a cut is one ``searchsorted``), and hand each disjoint key
range — a small k-way merge over per-run slices — to its own worker.
Concatenating the merged partitions in range order reproduces the
global merge exactly.

Two invariants make the result bit-identical to the serial merge for
*any* splitter choice and worker count:

* partitions are half-open key intervals ``[s_{p-1}, s_p)`` cut with
  ``side="left"`` in every run, so all records sharing a key land in
  the same partition — cross-run ties can never straddle a boundary;
* within a partition each run contributes a contiguous slice, in run
  order, and the partition merge is stable — so ties resolve by
  (run index, position within run), exactly as the serial engine does.

Splitters are sampled from run boundaries (evenly strided keys of each
run) and reduced to worker-count quantiles, which balances partitions
whenever runs cover similar key ranges — the case for the parallel
summarization pipeline, whose runs are chunk-wise samples of the same
distribution.  A skewed sample only unbalances the partitions; it can
never change the output.

Worker pools follow :mod:`repro.parallel.summarize`: processes by
default, threads as fallback in restricted sandboxes, ``workers=1``
inline with zero overhead.
"""

from __future__ import annotations

import logging
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)

import numpy as np

from ..storage.merge import merge_presorted
from .summarize import resolve_workers

logger = logging.getLogger("repro.parallel")

#: Strided samples taken per run when proposing splitters.
SPLITTER_SAMPLES_PER_RUN = 16

#: ``pool_kind="auto"`` switches to threads at this many payload bytes:
#: large NumPy payloads release the GIL during the searchsorted/scatter
#: work and threads share the arrays zero-copy, while tiny payloads are
#: interpreter-bound under the GIL — worker processes sidestep it and
#: pickling a few kilobytes costs next to nothing.  This is the single
#: documented knob of the auto decision: every ``pool_kind="auto"``
#: path (merging, spilled cascades, the parallel query engine) resolves
#: through :func:`choose_pool_kind` / :func:`choose_pool_kind_for_bytes`
#: against this default, and callers with unusual workloads may pass
#: their own ``threshold_bytes`` instead of editing a buried literal.
AUTO_POOL_THREAD_BYTES = 4 << 20


def choose_pool_kind_for_bytes(
    payload_bytes: int, threshold_bytes: int = AUTO_POOL_THREAD_BYTES
) -> str:
    """Resolve ``pool_kind="auto"`` from a raw payload byte count.

    Returns ``"thread"`` at or above ``threshold_bytes`` (the NumPy
    work on a payload that size releases the GIL and threads share it
    zero-copy), ``"process"`` below it (interpreter-bound work escapes
    the GIL on separate processes, and shipping a tiny payload is
    cheap).
    """
    return "thread" if payload_bytes >= threshold_bytes else "process"


def choose_pool_kind(
    runs: "list[tuple[np.ndarray, np.ndarray]]",
    threshold_bytes: int = AUTO_POOL_THREAD_BYTES,
) -> str:
    """Resolve ``pool_kind="auto"`` from the merge payload size.

    Returns ``"thread"`` when the runs carry at least
    ``threshold_bytes`` (default :data:`AUTO_POOL_THREAD_BYTES`) of
    key+payload data (GIL-releasing NumPy work dominates),
    ``"process"`` otherwise.  Callers that know better pass an explicit
    kind instead.
    """
    total = sum(keys.nbytes + payloads.nbytes for keys, payloads in runs)
    return choose_pool_kind_for_bytes(total, threshold_bytes)


def sample_splitters(
    key_runs: "list[np.ndarray]", n_parts: int
) -> np.ndarray:
    """Choose up to ``n_parts - 1`` ascending splitter keys.

    Samples each run at even strides (always including its tail — the
    run *boundaries*), pools and sorts the samples, and keeps the
    pool's ``n_parts``-quantiles, deduplicated.  Returns an ``S<k>``
    array; it may be shorter than requested (or empty) when the key
    space has too few distinct values, which simply yields fewer, or
    one, partitions.
    """
    if n_parts <= 1:
        key_runs = [k for k in key_runs if len(k)]
        dtype = key_runs[0].dtype if key_runs else "S1"
        return np.empty(0, dtype=dtype)
    samples = []
    for keys in key_runs:
        if not len(keys):
            continue
        stride = max(1, len(keys) // SPLITTER_SAMPLES_PER_RUN)
        samples.append(keys[stride - 1 :: stride])
        samples.append(keys[-1:])
    if not samples:
        return np.empty(0, dtype="S1")
    pool = np.sort(np.concatenate(samples))
    positions = (np.arange(1, n_parts) * len(pool)) // n_parts
    return np.unique(pool[positions])


def run_cut_positions(keys: np.ndarray, splitters: np.ndarray) -> np.ndarray:
    """Record positions cutting one sorted run at the splitters.

    Returns ``len(splitters) + 2`` ascending indices; partition ``p`` of
    the run is records ``[cuts[p], cuts[p + 1])``.  Cuts use
    ``side="left"`` — all records sharing a key land in the same
    partition, so cross-run ties can never straddle a boundary.  The
    in-memory :func:`partition_runs` and the file-backed sharded merge
    (:mod:`repro.parallel.spill`) share this rule, which is what makes
    both bit-identical to the serial stable merge.
    """
    bounds = np.searchsorted(keys, splitters, side="left")
    return np.concatenate(
        [[0], bounds, [len(keys)]]
    ).astype(np.int64)


def partition_runs(
    runs: "list[tuple[np.ndarray, np.ndarray]]", splitters: np.ndarray
) -> "list[list[tuple[np.ndarray, np.ndarray]]]":
    """Cut every run at the splitters into per-partition slice lists.

    Partition ``p`` holds, for each run in run order, the slice of keys
    in ``[splitters[p-1], splitters[p])`` — empty slices are dropped.
    """
    parts: list[list[tuple[np.ndarray, np.ndarray]]] = [
        [] for _ in range(len(splitters) + 1)
    ]
    for keys, payloads in runs:
        cuts = run_cut_positions(keys, splitters).tolist()
        for p in range(len(cuts) - 1):
            if cuts[p + 1] > cuts[p]:
                parts[p].append(
                    (keys[cuts[p] : cuts[p + 1]], payloads[cuts[p] : cuts[p + 1]])
                )
    return parts


def merge_partition(
    part: "list[tuple[np.ndarray, np.ndarray]]",
) -> "tuple[np.ndarray, np.ndarray] | None":
    """Stable merge of one partition's run slices (a pool work unit).

    Module-level so process pools can pickle it.  Returns ``None`` for
    an empty partition.
    """
    if not part:
        return None
    return merge_presorted(part)


def _make_executor(workers: int, kind: str) -> Executor | None:
    if workers <= 1 or kind == "serial":
        return None
    if kind == "thread":
        return ThreadPoolExecutor(max_workers=workers)
    try:
        return ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError, NotImplementedError) as error:
        # pragma: no cover - sandboxed environments
        # Sandboxes without fork/semaphore support land here; degrade
        # to threads *loudly* — the work units release the GIL, so the
        # result is identical, only the parallelism regime changes.
        logger.warning(
            "process pool unavailable (%s); degrading to a thread pool", error
        )
        return ThreadPoolExecutor(max_workers=workers)


def _pool_map(fn, arg_columns: list, workers: int, kind: str) -> list:
    """``executor.map`` with pool healing; bit-identical to serial.

    Runs ``fn`` over the argument columns on the pool
    :func:`_make_executor` resolves (inline when it yields none).  A
    pool that *breaks mid-map* — a worker process killed under memory
    pressure or by a sandbox — raises :class:`BrokenExecutor`; since
    every work unit here is a pure function, the whole map is retried
    once on a thread pool with a logged warning instead of failing the
    query or merge.  Any exception raised by ``fn`` itself propagates
    unchanged — healing covers pool infrastructure, not user code.
    """
    executor = _make_executor(workers, kind)
    if executor is None:
        return [fn(*row) for row in zip(*arg_columns)]
    try:
        return list(executor.map(fn, *arg_columns))
    except BrokenExecutor as error:
        logger.warning(
            "worker pool broke mid-map (%s); retrying once on threads", error
        )
    finally:
        executor.shutdown(wait=True)
    with ThreadPoolExecutor(max_workers=workers) as retry:
        return list(retry.map(fn, *arg_columns))


def parallel_merge_runs(
    runs: "list[tuple[np.ndarray, np.ndarray]]",
    workers: int | None = None,
    kind: str = "process",
) -> "tuple[np.ndarray, np.ndarray]":
    """Merge presorted runs on a worker pool; bit-identical to serial.

    ``runs`` are (keys, payloads) pairs, each internally stably sorted.
    The output equals :func:`repro.storage.merge.merge_presorted` on
    the same list — and therefore a stable argsort of the concatenation
    — for every ``workers`` / ``kind`` choice.  ``kind="auto"`` picks
    threads or processes from the payload size
    (:func:`choose_pool_kind`).
    """
    if kind not in ("process", "thread", "serial", "auto"):
        raise ValueError(f"unknown pool kind {kind!r}")
    runs = [(np.asarray(k), np.asarray(p)) for k, p in runs]
    for keys, payloads in runs:
        if len(keys) != len(payloads):
            raise ValueError(f"{len(keys)} keys vs {len(payloads)} payloads in run")
    runs = [run for run in runs if len(run[0])]
    if not runs:
        raise ValueError("parallel_merge_runs requires at least one non-empty run")
    if len(runs) == 1:
        return runs[0]
    if kind == "auto":
        kind = choose_pool_kind(runs)
    workers = resolve_workers(workers)
    splitters = sample_splitters([keys for keys, _ in runs], workers)
    if workers <= 1 or len(splitters) == 0:
        return merge_presorted(runs)
    parts = partition_runs(runs, splitters)
    merged = _pool_map(merge_partition, [parts], workers, kind)
    merged = [pair for pair in merged if pair is not None]
    if len(merged) == 1:
        return merged[0]
    keys = np.concatenate([k for k, _ in merged])
    payloads = np.concatenate([p for _, p in merged])
    return keys, payloads
