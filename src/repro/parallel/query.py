"""Multi-worker batched query execution: the parallel SIMS engine.

The batched executor (:mod:`repro.parallel.batch`) shares the two
expensive steps of the exact-search SIMS pass across a whole query
batch, but executes both on one thread.  This module parallelizes each
step while keeping the *answers* bit-identical to the serial batched
engine:

1. **Parallel lower-bound scan.**  The summary column is partitioned
   into contiguous worker ranges; each worker computes every query's
   mindist vector and the batch's candidate union over its own range.
   Lower bounds are elementwise per record, so concatenating the
   per-range results in range order reproduces the serial matrix and
   candidate list exactly — candidates stay in ascending storage
   order, preserving the skip-sequential fetch contract.
   ``pool_kind="auto"`` resolves threads vs. processes from the payload
   size (:func:`repro.parallel.merge.choose_pool_kind_for_bytes`):
   large summary columns release the GIL inside NumPy and are shared
   zero-copy by threads, tiny ones are cheaper to ship to processes.

2. **Shard-parallel record fetch.**  The candidate union is cut into
   contiguous chunks, one per worker.  A read-only
   :class:`repro.storage.disk.ShardedDisk` session hands each worker a
   private I/O domain; the worker streams its chunk's unpruned blocks
   through its own :class:`repro.storage.bufferpool.BufferPool` (its
   own head, its own counters, its own cache) and fills per-query
   bounded max-heaps seeded exactly like the serial engine's.  Fetches
   always run on threads — the simulated device is shared state worker
   processes could not see — or inline when ``pool_kind="serial"``.

**Answer equivalence.**  Worker heaps retain the k lexicographically
smallest ``(distance, id)`` pairs of everything offered to them
(:class:`repro.core.knn._BoundedMaxHeap`), an offer-order-independent
set.  Each worker's pruning threshold is never tighter than the serial
engine's at the same record (a worker sees a subset of the offers, so
its k-th best distance can only be worse), so every record the serial
engine visits is visited here on the same query's behalf.  The
coordinator merge — re-offering every worker's retained pairs into
fresh seeded heaps — therefore reproduces the serial batched answers,
ids, distances and tie order included, for any worker count and any
candidate partitioning.  ``visited_records`` may exceed the serial
engine's (workers lack each other's threshold feedback and prune
less); a worker's extra visit can displace a serial answer only if its
true distance *exactly* equals the final k-th distance while its SAX
lower bound is exactly tight (``mindist == distance == threshold`` in
float64) — the same degenerate strict-``<``-pruning boundary on which
the serial engines themselves are already cut off from a tying record
the brute-force oracle would keep.  Outside that measure-zero
configuration the answers cannot differ, and the equivalence suite and
benchmark assert equality outright.

**I/O determinism.**  Each worker's access sequence is a pure function
of (queries, seeds, summary column, its candidate chunk) — never of
pool scheduling — and each classifies against its own head.
Executing the same per-worker plans inline (``pool_kind="serial"``)
is the *serial replay oracle*: the reconciled
:class:`repro.storage.cost.DiskStats` of a threaded run are
bit-identical to it, the same contract the sharded merge established
(PR 3).  The sharded fetch may read a boundary page once per adjacent
worker where the serial pass read it once — the usual price of
partitioned I/O domains; the equivalence suite pins the replay
contract, and the benchmark reports both costs.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..core.knn import _BoundedMaxHeap
from ..core.sims import SIMS_BLOCK_RECORDS
from ..indexes.base import BatchReport, Measurement
from ..series.distance import early_abandon_euclidean_block
from ..storage.bufferpool import BufferPool
from ..storage.disk import ShardedDisk
from ..summaries.paa import paa
from ..summaries.sax import SAXConfig, mindist_paa_to_words
from .batch import (
    MAX_MINDIST_CELLS,
    _outcome,
    batched_exact_knn,
    build_batch_report,
    seeded_heaps,
    walk_candidate_blocks,
)
from .heal import run_self_healing
from .merge import _pool_map, choose_pool_kind_for_bytes
from .summarize import resolve_workers

#: Pages cached by each fetch worker's shard-scoped buffer pool.  The
#: skip-sequential fetch never revisits a page, so the pool changes no
#: counter — it exists so every worker's reads go through a private
#: cache domain, mirroring the sharded merge.
QUERY_SHARD_POOL_PAGES = 8

_POOL_KINDS = ("auto", "thread", "process", "serial")


def partition_ranges(n: int, n_parts: int) -> "list[tuple[int, int]]":
    """Split ``[0, n)`` into ``n_parts`` contiguous balanced ranges."""
    bounds = np.linspace(0, n, max(1, n_parts) + 1).astype(np.int64)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(len(bounds) - 1)]


def make_sims_fetch(index, device=None):
    """Bind a leaf-bulk-loaded index's SIMS fetch to a worker device.

    The shared factory behind ``CoconutTree._make_sims_fetch`` and
    ``CoconutTrie._make_sims_fetch`` (both expose the same fetch
    vocabulary: ``_fetch_from_leaves(positions, leaf_file=)`` for
    materialized variants, ``_fetch_from_raw`` + ``_flat_offsets`` for
    secondary ones).  ``device=None`` returns the ordinary
    parent-device fetch; a worker's device gets a closure whose every
    read — leaf pages or raw-file pages — lands on that device.
    """
    if device is None:
        return (
            index._fetch_from_leaves
            if index.is_materialized
            else index._fetch_from_raw
        )
    if index.is_materialized:
        leaf_file = index._leaf_file.attach(device)

        def fetch(positions: np.ndarray):
            return index._fetch_from_leaves(positions, leaf_file=leaf_file)

        return fetch
    raw_view = index.raw.view(device)

    def fetch(positions: np.ndarray):
        offsets = index._flat_offsets[positions]
        return raw_view.get_many(offsets), offsets

    return fetch


def _scan_range(
    query_paa: np.ndarray,
    words: np.ndarray,
    config: SAXConfig,
    thresholds: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """One worker's lower-bound scan: (mindist rows, local candidates).

    ``words`` is the worker's contiguous slice of the summary column;
    the returned candidate positions are *local* to it.  Module-level
    so process pools can pickle it.
    """
    mindists = np.stack(
        [
            mindist_paa_to_words(query_paa[i], words, config)
            for i in range(len(query_paa))
        ]
    )
    union = np.nonzero((mindists < thresholds[:, None]).any(axis=0))[0]
    return mindists, union


def parallel_lower_bound_scan(
    query_paa: np.ndarray,
    words: np.ndarray,
    config: SAXConfig,
    thresholds: np.ndarray,
    workers: int,
    pool_kind: str = "auto",
) -> "tuple[np.ndarray, np.ndarray]":
    """Compute (mindist matrix, candidate union) on a worker pool.

    Bit-identical to the serial computation for any worker count and
    pool kind: lower bounds are elementwise per record, and per-range
    results concatenate in range order (candidates ascending).
    """
    n = len(words)
    ranges = [r for r in partition_ranges(n, workers) if r[1] > r[0]]
    if pool_kind == "auto":
        payload = words.nbytes + len(query_paa) * n * 8
        pool_kind = choose_pool_kind_for_bytes(payload)
    if len(ranges) <= 1 or pool_kind == "serial":
        parts = [
            _scan_range(query_paa, words[lo:hi], config, thresholds)
            for lo, hi in ranges
        ]
    else:
        # _pool_map heals a broken process pool (retry on threads):
        # the scan is a pure function of its slice, so the healed
        # result is bit-identical.
        parts = _pool_map(
            _scan_range,
            [
                [query_paa] * len(ranges),
                [words[lo:hi] for lo, hi in ranges],
                [config] * len(ranges),
                [thresholds] * len(ranges),
            ],
            len(ranges),
            pool_kind,
        )
    if not parts:
        return (
            np.empty((len(query_paa), 0)),
            np.empty(0, dtype=np.int64),
        )
    mindists = np.concatenate([m for m, _ in parts], axis=1)
    union = np.concatenate(
        [local + lo for (_, local), (lo, _) in zip(parts, ranges)]
    ).astype(np.int64)
    return mindists, union


def _fetch_partition(
    queries: np.ndarray,
    k: int,
    mindists: np.ndarray,
    candidates: np.ndarray,
    seeds: "list[list[tuple[float, int]]]",
    fetch,
    block_records: int,
    bound_board=None,
) -> "tuple[list[_BoundedMaxHeap], np.ndarray]":
    """One fetch worker: walk a candidate chunk, fill per-query heaps.

    Runs the *same* block loop as the serial batched engine
    (:func:`repro.parallel.batch.walk_candidate_blocks`) on this
    worker's chunk — except the thresholds only ever see the chunk's
    offers (plus the shared seeds), so they are never tighter than the
    serial engine's and pruning can only be more conservative.  A
    ``bound_board`` closes that gap: workers publish their thresholds
    and prune against the shared minimum, shrinking visits without
    touching answers (the certified-upper-bound argument in
    :mod:`repro.parallel.sched`).
    """
    heaps = seeded_heaps(len(queries), k, seeds)
    visited = walk_candidate_blocks(
        queries, heaps, mindists, candidates, fetch, block_records,
        bound_board=bound_board,
    )
    return heaps, visited


def parallel_batched_exact_knn(
    queries: np.ndarray,
    k: int,
    words: np.ndarray,
    config: SAXConfig,
    make_fetch,
    disk,
    seeds: "list[list[tuple[float, int]]] | None" = None,
    workers: int | None = 2,
    pool_kind: str = "auto",
    block_records: int = SIMS_BLOCK_RECORDS,
    wrap_device=None,
    bound_sharing: str = "off",
    bound_board=None,
    bound_cadence: str = "block",
    scan_workers: int | None = None,
    scan_pool_kind: str | None = None,
    min_fetch_records: int = 1,
    heal_report=None,
):
    """Exact k-NN for a batch, both SIMS phases on worker pools.

    Parameters mirror :func:`repro.parallel.batch.batched_exact_knn`
    except that ``make_fetch(device)`` is a factory: called with
    ``None`` it returns the index's ordinary fetch (the serial path);
    called with a worker's device (a shard-scoped buffer pool) it
    returns a fetch whose every read lands on that device.  ``workers``
    follows the build convention (``None``/``0`` = all cores, ``1`` =
    the serial engine); ``pool_kind="serial"`` executes the parallel
    plan inline — the replay oracle for the I/O-determinism contract.

    ``bound_sharing="on"`` publishes each worker's per-query heap
    thresholds to a shared board consulted at block boundaries
    (:class:`repro.parallel.sched.SharedBoundBoard`): answers and tie
    order stay bit-identical for any publish interleaving, visits can
    only shrink, but ``DiskStats`` become interleaving-dependent — the
    replay-determinism contract requires ``"off"``.  A fresh board is
    built per healing attempt (a faulted attempt's publishes must not
    leak into its retry); ``bound_board`` overrides that with an
    injected board for the unsplit batch (the property-test seam for
    adversarial publish schedules).  ``bound_cadence="partition"``
    freezes each worker's snapshot at partition start and merges its
    publishes on completion — the coordinator-exchange cadence a
    process pool would need.  ``scan_workers``/``scan_pool_kind``
    override the lower-bound scan's fan-out (the planner's knobs;
    default: same as the fetch), and ``min_fetch_records`` is the
    planner's floor on candidates per fetch partition.

    ``wrap_device(shard, partition, attempt)`` is the self-healing
    fault seam (:mod:`repro.parallel.heal`): each fetch worker's reads
    route through its return value.  When a worker raises an injected
    device fault the read-only session aborts (parent unfenced, no
    stats), transients are retried, and anything else degrades the
    whole batch to the serial engine — answers and tie order are the
    serial oracle's either way.

    Returns the same ``KNNOutcome`` list as the serial engine, with
    identical ids, distances and tie order for any worker count;
    ``visited_records`` counts what the workers actually evaluated.
    """
    if pool_kind not in _POOL_KINDS:
        raise ValueError(f"pool_kind must be one of {_POOL_KINDS}, got {pool_kind!r}")
    if bound_sharing not in ("on", "off"):
        raise ValueError(
            f"bound_sharing must be 'on' or 'off', got {bound_sharing!r}"
        )
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    n_queries, n = len(queries), len(words)
    workers = resolve_workers(workers)
    if workers <= 1:
        return batched_exact_knn(
            queries, k, words, config, make_fetch(None), seeds, block_records
        )
    if n_queries > 1 and n_queries * n > MAX_MINDIST_CELLS:
        # Same sub-batch split (and seed routing) as the serial engine:
        # the memory cap applies to the per-worker mindist slices too.
        # Sub-batches answer disjoint query sets, so each gets its own
        # board (an injected one is sized for the unsplit batch and is
        # dropped here).
        half = n_queries // 2
        seeds = seeds or [[] for _ in range(n_queries)]
        return parallel_batched_exact_knn(
            queries[:half], k, words, config, make_fetch, disk,
            seeds[:half], workers, pool_kind, block_records, wrap_device,
            bound_sharing=bound_sharing, bound_cadence=bound_cadence,
            scan_workers=scan_workers, scan_pool_kind=scan_pool_kind,
            min_fetch_records=min_fetch_records, heal_report=heal_report,
        ) + parallel_batched_exact_knn(
            queries[half:], k, words, config, make_fetch, disk,
            seeds[half:], workers, pool_kind, block_records, wrap_device,
            bound_sharing=bound_sharing, bound_cadence=bound_cadence,
            scan_workers=scan_workers, scan_pool_kind=scan_pool_kind,
            min_fetch_records=min_fetch_records, heal_report=heal_report,
        )
    seeds = seeds or [[] for _ in range(n_queries)]
    heaps = seeded_heaps(n_queries, k, seeds)
    if n == 0 or n_queries == 0:
        return [_outcome(heap, visited=0, n_records=n) for heap in heaps]
    query_paa = paa(queries, config.word_length)
    thresholds = np.array([heap.threshold for heap in heaps])
    mindists, union = parallel_lower_bound_scan(
        query_paa, words, config, thresholds,
        scan_workers if scan_workers is not None else workers,
        scan_pool_kind if scan_pool_kind is not None else pool_kind,
    )
    visited = np.zeros(n_queries, dtype=np.int64)
    if len(union):
        n_chunks = min(workers, len(union))
        if min_fetch_records > 1:
            n_chunks = max(1, min(n_chunks, len(union) // min_fetch_records))
        chunks = [
            chunk
            for chunk in np.array_split(union, n_chunks)
            if len(chunk)
        ]
        results = run_self_healing(
            lambda attempt_index: _run_fetch_partitions(
                disk, chunks, queries, k, mindists, seeds, make_fetch,
                block_records, pool_kind, wrap_device, attempt_index,
                bound_sharing=bound_sharing, bound_board=bound_board,
                bound_cadence=bound_cadence,
            ),
            # The sentinel routes degradation out of the helper: the
            # serial engine redoes the whole batch (scan included) on
            # the parent device, so its answers are the oracle's by
            # construction.
            fallback=lambda: None,
            label="parallel query fetch",
            report=heal_report,
        )
        if results is None:
            return batched_exact_knn(
                queries, k, words, config, make_fetch(None), seeds, block_records
            )
        for worker_heaps, worker_visited in results:
            for i in range(n_queries):
                heaps[i].merge(worker_heaps[i])
            visited += worker_visited
    return [
        _outcome(heap, visited=int(visited[i]), n_records=n)
        for i, heap in enumerate(heaps)
    ]


def _run_fetch_partitions(
    disk,
    chunks: "list[np.ndarray]",
    queries: np.ndarray,
    k: int,
    mindists: np.ndarray,
    seeds,
    make_fetch,
    block_records: int,
    pool_kind: str,
    wrap_device=None,
    attempt_index: int = 0,
    bound_sharing: str = "off",
    bound_board=None,
    bound_cadence: str = "block",
):
    """Run the per-chunk fetch plans on read-only shards.

    Threaded unless ``pool_kind="serial"`` (the inline replay); either
    way the shards reconcile into the parent in partition order, so the
    resulting :class:`DiskStats` are a pure function of the plans.  A
    worker exception aborts the session — parent unfenced, nothing
    reconciled — which is what makes the caller's retry loop sound.

    The bound board is built *here*, once per attempt: a faulted
    attempt may have published bounds computed from corrupted reads,
    so its board must never survive into the retry.  (An injected
    ``bound_board`` is the test seam and bypasses that isolation.)
    With ``bound_cadence="partition"`` each worker sees a snapshot
    frozen at partition start and its publishes merge on completion —
    under ``pool_kind="serial"`` partition ``p`` therefore prunes with
    exactly the bounds of partitions ``< p``, a deterministic replay.
    """
    if bound_board is None and bound_sharing == "on":
        from .sched import SharedBoundBoard

        bound_board = SharedBoundBoard(len(queries))
    session = ShardedDisk(
        disk,
        [(0, 0)] * len(chunks),
        names=[f"query-fetch-p{p}" for p in range(len(chunks))],
        read_only=True,
    )

    def run_partition(p: int):
        board = bound_board
        if board is not None and bound_cadence == "partition":
            from .sched import PartitionBoardView

            board = PartitionBoardView(bound_board)
        device = (
            session.shards[p]
            if wrap_device is None
            else wrap_device(session.shards[p], p, attempt_index)
        )
        with BufferPool(device, QUERY_SHARD_POOL_PAGES) as pool:
            result = _fetch_partition(
                queries, k, mindists, chunks[p], seeds, make_fetch(pool),
                block_records, bound_board=board,
            )
        if board is not None and board is not bound_board:
            board.flush()
        return result

    with session:
        if pool_kind == "serial" or len(chunks) == 1:
            return [run_partition(p) for p in range(len(chunks))]
        with ThreadPoolExecutor(max_workers=len(chunks)) as executor:
            return list(executor.map(run_partition, range(len(chunks))))


def parallel_sims_query_batch(
    index, batch, prepare_parallel, query_workers, pool_kind: str = "auto",
    wrap_device=None, bound_sharing: str = "off", bound_board=None,
    bound_cadence: str = "block", scan_workers: int | None = None,
    scan_pool_kind: str | None = None, min_fetch_records: int = 1,
    heal_report=None,
) -> BatchReport:
    """Multi-worker ``query_batch`` for SIMS-backed indexes.

    ``prepare_parallel`` runs inside the measurement and returns the
    index's ``(words, make_fetch)`` pair — summary-column I/O is
    charged to the batch, and ``make_fetch`` binds fetches to worker
    devices.  Approximate seeding stays on the parent device, before
    the sharded fetch session opens, exactly like the serial engine.
    The trailing keywords are the scheduler's knobs, threaded to
    :func:`parallel_batched_exact_knn`; the defaults reproduce the
    PR-4 plan exactly.
    """
    queries = np.atleast_2d(np.asarray(batch.queries, dtype=np.float64))
    with Measurement(index.disk) as measure:
        words, make_fetch = prepare_parallel()
        seeds = []
        for query in queries:
            approx = index.approximate_search(query)
            seeds.append([(approx.distance, approx.answer_idx)])
        outcomes = parallel_batched_exact_knn(
            queries,
            batch.k,
            words,
            index.config,
            make_fetch,
            index.disk,
            seeds=seeds,
            workers=query_workers,
            pool_kind=pool_kind,
            wrap_device=wrap_device,
            bound_sharing=bound_sharing,
            bound_board=bound_board,
            bound_cadence=bound_cadence,
            scan_workers=scan_workers,
            scan_pool_kind=scan_pool_kind,
            min_fetch_records=min_fetch_records,
            heal_report=heal_report,
        )
    return build_batch_report(outcomes, measure)


def parallel_serial_scan_batch(
    index, batch, query_workers, pool_kind: str = "auto", wrap_device=None,
    heal_report=None,
) -> BatchReport:
    """Multi-worker batched brute-force scan (the SerialScan path).

    The record space is split into page-aligned contiguous ranges, one
    per worker; each worker streams its range through a read-only
    shard + private pool and keeps per-query heaps of its local top-k.
    Because the heaps retain the k lexicographically smallest
    ``(distance, id)`` pairs, the coordinator merge equals the serial
    single-pass answers exactly — ties included — for any partitioning.

    ``wrap_device`` is the self-healing fault seam (see
    :func:`parallel_batched_exact_knn`): injected worker faults retry
    on transients and otherwise degrade to one full-range scan on the
    parent device — the exact serial plan.
    """
    if pool_kind not in _POOL_KINDS:
        raise ValueError(
            f"pool_kind must be one of {_POOL_KINDS}, got {pool_kind!r}"
        )
    queries = np.atleast_2d(np.asarray(batch.queries, dtype=np.float64))
    raw = index._require_built()
    k = batch.k
    workers = resolve_workers(query_workers)
    spp = raw.series_per_page if raw.pages_per_series == 1 else 1
    n_pages = -(-raw.n_series // spp)
    ranges = []
    for page_lo, page_hi in partition_ranges(n_pages, min(workers, n_pages)):
        lo, hi = page_lo * spp, min(page_hi * spp, raw.n_series)
        if hi > lo:
            ranges.append((lo, hi))

    def scan_range(lo: int, hi: int, device) -> "list[_BoundedMaxHeap]":
        view = raw.view(device)
        local = [_BoundedMaxHeap(k) for _ in queries]
        for start, block in view.scan(start=lo, stop=hi):
            block64 = block.astype(np.float64)
            for heap, query in zip(local, queries):
                # Fused refine against this heap's block-start k-th
                # best.  Abandoned rows come back ``inf``: every one
                # sits strictly above the threshold, so the multiset
                # of *retained* offers — all the order-independent
                # heap ever looks at — is unchanged, and the merged
                # answers stay bit-identical to the full-distance scan.
                distances = early_abandon_euclidean_block(
                    query, block64, heap.threshold
                )
                top = np.argsort(distances, kind="stable")[:k]
                for j in top:
                    heap.offer(float(distances[j]), start + int(j))
        return local

    def attempt(attempt_index: int) -> "list[list[_BoundedMaxHeap]]":
        session = ShardedDisk(
            index.disk,
            [(0, 0)] * len(ranges),
            names=[f"scan-p{p}" for p in range(len(ranges))],
            read_only=True,
        )

        def run(p: int) -> "list[_BoundedMaxHeap]":
            device = (
                session.shards[p]
                if wrap_device is None
                else wrap_device(session.shards[p], p, attempt_index)
            )
            with BufferPool(device, QUERY_SHARD_POOL_PAGES) as pool:
                return scan_range(*ranges[p], pool)

        with session:
            if pool_kind == "serial":
                return [run(p) for p in range(len(ranges))]
            with ThreadPoolExecutor(max_workers=len(ranges)) as executor:
                return list(executor.map(run, range(len(ranges))))

    heaps = [_BoundedMaxHeap(k) for _ in queries]
    with Measurement(index.disk) as measure:
        if len(ranges) <= 1:
            results = [
                scan_range(*ranges[p], index.disk) for p in range(len(ranges))
            ]
        else:
            results = run_self_healing(
                attempt,
                # Degradation is the serial plan itself: one full-range
                # scan on the parent device.
                fallback=lambda: [scan_range(0, raw.n_series, index.disk)],
                label="parallel serial scan",
                report=heal_report,
            )
        for local in results:
            for heap, partial in zip(heaps, local):
                heap.merge(partial)
    outcomes = [
        _outcome(heap, visited=raw.n_series, n_records=raw.n_series)
        for heap in heaps
    ]
    return build_batch_report(outcomes, measure)
