"""Adaptive parallel query scheduling: shared bounds + cost-model plans.

PR 4 parallelized the batched SIMS pass, but left two gaps the ROADMAP
names under "adaptive parallel query scheduling":

1. **Exact workers share seeds but not threshold feedback.**  Each
   fetch worker prunes against the k-th best of *its own* offers, so a
   hard query pays redundant visits on every worker that does not own
   its nearest neighbors.  :class:`SharedBoundBoard` closes the loop:
   a per-query array of published distance bounds that workers consult
   at block boundaries.  Reads are a bare reference grab of an
   immutable snapshot (atomic under the GIL — the "lock-free" side);
   publishes min-merge into a fresh snapshot under a lock and bump an
   epoch.  For pools without shared memory, :class:`PartitionBoardView`
   is the coordinator-exchange cadence: a partition works against a
   frozen snapshot and its publishes are merged when it completes.

   **Why sharing cannot change the answers.**  Every published value
   is some heap's k-th best over a subset of the global offer multiset,
   so it is a *certified upper bound* on the final k-th distance —
   stale or out-of-order snapshots only loosen it, never break it.  A
   record pruned by a shared bound has ``mindist >= bound >= final
   threshold``, which is exactly the record the serial engine's own
   strict-``<`` pruning declares useless; outside the measure-zero tie
   boundary documented in :mod:`repro.parallel.query`, the retained
   k-smallest set cannot change.  Visits, by contrast, can only
   shrink: each worker prunes against the *running minimum* of its
   local threshold and every board snapshot it has seen, which an
   induction over blocks shows is never above the threshold the same
   worker would have used without sharing (``docs/queries.md`` spells
   the argument out).  DiskStats under sharing are interleaving-
   dependent — the replay-determinism contract holds with
   ``bound_sharing="off"``, and the equivalence suite pins both.

2. **Approximate batches ran serially.**  Their visit order (ascending
   target leaf for the trees, batch order for the LSM run probes) is a
   partitionable sort: :func:`parallel_approx_batch` range-partitions
   it across read-only :class:`repro.storage.disk.ShardedDisk`
   sessions, one per-partition cache each, with per-query answers
   pinned to the serial per-batch cache oracle (the answer of a query
   never depends on cache hits, only its I/O charging does).

On top of both sits the **cost-model planner**
(:func:`plan_query_batch`): instead of the fixed
``choose_pool_kind_for_bytes`` byte threshold and
"one chunk per requested worker" split, it prices the batch with a
calibrated :class:`repro.storage.cost.QueryCostModel` (lower-bound
cells, refine records, pool-task overhead, IPC shipping) and picks the
scan worker count, scan pool kind, fetch partition floor and bound
cadence.  Every decision is recorded on a :class:`PlanReport` attached
to the batch report.  ``scheduler="fixed"`` is the escape hatch that
reproduces the PR-4 plan exactly (requested workers, byte-threshold
pool choice, no sharing, serial approximate batches).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..core.sims import SIMS_BLOCK_RECORDS
from ..indexes.base import BatchReport, Measurement, QueryResult
from ..storage.bufferpool import BufferPool
from ..storage.cost import DEFAULT_QUERY_COST, QueryCostModel
from ..storage.disk import ShardedDisk
from .batch import approx_query_batch, sims_query_batch
from .heal import run_self_healing
from .query import (
    QUERY_SHARD_POOL_PAGES,
    parallel_sims_query_batch,
)
from .summarize import resolve_workers

_SCHEDULERS = ("adaptive", "fixed")
_SHARING_MODES = ("auto", "on", "off")
_CADENCES = ("block", "partition")

#: A scan worker's slice must amortize at least this many task spawns.
SCAN_SPAN_TASKS = 4

#: A fetch partition must hold at least ``thread_task_us /
#: refine_record_us`` candidate records to be worth a pool task; this
#: caps the floor at one refine block so degenerate calibrations
#: cannot serialize fetches.
MAX_FETCH_FLOOR_RECORDS = SIMS_BLOCK_RECORDS


# ----------------------------------------------------------------------
# Shared best-k bound
# ----------------------------------------------------------------------
class SharedBoundBoard:
    """Per-query published distance bounds shared by exact workers.

    ``read()`` returns the current snapshot — an *immutable* float64
    array, one certified upper bound on the final k-th distance per
    query.  Snapshot swaps are a single reference assignment, atomic
    under the GIL, so readers never lock and never observe a torn
    array (the lock-free-style epoch publish of the design).
    ``publish(bounds)`` min-merges into a fresh snapshot under the
    lock and bumps :attr:`epoch`.

    Any value ever published is a heap threshold over a subset of the
    global offers (or ``inf``), hence ``>=`` the final k-th distance;
    the min of any collection of such values — however stale or
    reordered — keeps that property.  That is the entire correctness
    obligation on this class, and what lets the engine accept *any*
    publish interleaving.
    """

    def __init__(self, n_queries: int):
        bounds = np.full(n_queries, np.inf, dtype=np.float64)
        bounds.setflags(write=False)
        self._bounds = bounds
        self._lock = threading.Lock()
        self.epoch = 0

    def __len__(self) -> int:
        return len(self._bounds)

    def read(self) -> np.ndarray:
        """Current snapshot (read-only; copy before mutating)."""
        return self._bounds

    def publish(self, bounds: np.ndarray) -> None:
        """Min-merge ``bounds`` into a fresh published snapshot."""
        with self._lock:
            merged = np.minimum(self._bounds, bounds)
            merged.setflags(write=False)
            self._bounds = merged
            self.epoch += 1


class PartitionBoardView:
    """Coordinator-exchange cadence over a :class:`SharedBoundBoard`.

    Process pools (and any worker without shared memory) cannot read a
    live board: this view freezes the parent snapshot when the
    partition starts, buffers the partition's publishes locally, and
    min-merges them into the parent in one :meth:`flush` when the
    partition completes — the snapshot-exchange the coordinator would
    perform over IPC.  Frozen reads are merely *staler* certified
    bounds, so every correctness property of the live board carries
    over unchanged.
    """

    def __init__(self, parent: SharedBoundBoard):
        self._parent = parent
        self._snapshot = parent.read()
        self._pending: np.ndarray | None = None

    def read(self) -> np.ndarray:
        return self._snapshot

    def publish(self, bounds: np.ndarray) -> None:
        if self._pending is None:
            self._pending = np.asarray(bounds, dtype=np.float64).copy()
        else:
            np.minimum(self._pending, bounds, out=self._pending)

    def flush(self) -> None:
        if self._pending is not None:
            self._parent.publish(self._pending)
            self._pending = None


# ----------------------------------------------------------------------
# Cost calibration
# ----------------------------------------------------------------------
def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@lru_cache(maxsize=1)
def calibrate_query_costs() -> QueryCostModel:
    """Measure the per-kernel rates of :class:`QueryCostModel`.

    Times the two hot kernels the planner prices — the SIMS lower
    bound and the fused refine — on small synthetic inputs, plus one
    thread-pool task round trip.  Process-pool and IPC terms keep
    their documented defaults: measuring a fork + import costs more
    than any plan it could improve.  Cached for the process lifetime
    so repeated plans (and the thread-vs-replay stats contract, which
    needs identical plans) see one consistent model.
    """
    from ..series.distance import early_abandon_euclidean_block
    from ..summaries.paa import paa
    from ..summaries.sax import SAXConfig, mindist_paa_to_words

    rng = np.random.default_rng(7)
    config = SAXConfig(word_length=8, cardinality=256)
    n, length = 4096, 64
    words = rng.integers(0, 256, size=(n, 8), dtype=np.uint16)
    query = rng.standard_normal(length)
    query_paa = paa(query[None, :], 8)[0]
    block = rng.standard_normal((1024, length))

    scan_s = _best_of(lambda: mindist_paa_to_words(query_paa, words, config))
    refine_s = _best_of(
        lambda: early_abandon_euclidean_block(query, block, float("inf"))
    )

    def _task_round_trip():
        with ThreadPoolExecutor(max_workers=2) as pool:
            list(pool.map(int, range(2)))

    task_s = _best_of(_task_round_trip)

    default = DEFAULT_QUERY_COST
    return QueryCostModel(
        mindist_cell_us=max(1e-4, scan_s * 1e6 / n),
        refine_record_us=max(1e-3, refine_s * 1e6 / len(block)),
        thread_task_us=max(10.0, task_s * 1e6 / 2),
        process_task_us=default.process_task_us,
        ship_us_per_mib=default.ship_us_per_mib,
    )


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanReport:
    """One batch's recorded scheduling decision — fully auditable.

    A pure, deterministic function of (batch shape, index size,
    requested workers, cost model): never of pool scheduling, which is
    what keeps the ``pool_kind="serial"`` replay pinned to the same
    plan the threaded run executed.
    """

    scheduler: str
    mode: str
    n_queries: int
    n_records: int
    k: int
    requested_workers: int | None
    workers: int
    scan_workers: int
    scan_pool_kind: str
    pool_kind: str
    bound_sharing: str
    bound_cadence: str
    min_fetch_records: int
    est_scan_ms: float
    est_refine_ms: float
    reason: str

    def as_dict(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "mode": self.mode,
            "n_queries": self.n_queries,
            "n_records": self.n_records,
            "k": self.k,
            "requested_workers": self.requested_workers,
            "workers": self.workers,
            "scan_workers": self.scan_workers,
            "scan_pool_kind": self.scan_pool_kind,
            "pool_kind": self.pool_kind,
            "bound_sharing": self.bound_sharing,
            "bound_cadence": self.bound_cadence,
            "min_fetch_records": self.min_fetch_records,
            "est_scan_ms": self.est_scan_ms,
            "est_refine_ms": self.est_refine_ms,
            "reason": self.reason,
        }


def plan_query_batch(
    batch,
    index,
    cost_model: QueryCostModel | None = None,
    query_workers: int | None = 1,
    pool_kind: str = "auto",
    scheduler: str = "adaptive",
    bound_sharing: str = "auto",
    bound_cadence: str = "block",
) -> PlanReport:
    """Pick the batch's worker counts, pool kinds and partition split.

    ``scheduler="fixed"`` reproduces the PR-4 plan exactly: the
    requested worker count everywhere, the byte-threshold pool choice
    (deferred to the engine via ``pool_kind="auto"``), one fetch chunk
    per worker, and no bound sharing unless explicitly forced ``"on"``.

    ``scheduler="adaptive"`` prices the batch with ``cost_model``
    (default: the documented :data:`DEFAULT_QUERY_COST`; pass
    :func:`calibrate_query_costs` output for measured rates) and
    *clamps downward* — the plan never exceeds the requested worker
    count, so ``query_workers=1`` always remains the serial engine:

    * scan workers: each worker's slice of the Q x N lower-bound
      matrix must amortize :data:`SCAN_SPAN_TASKS` task spawns;
    * scan pool kind (only when the caller left ``pool_kind="auto"``):
      argmin of the modeled thread total vs. the process total
      (spawn + payload shipping + the same compute);
    * fetch split: a partition must hold ``thread_task_us /
      refine_record_us`` candidates (``min_fetch_records``) to earn a
      pool task;
    * bound sharing: on for exact batches (``bound_sharing="auto"``),
      off for approximate ones (no heaps to feed it).
    """
    if scheduler not in _SCHEDULERS:
        raise ValueError(
            f"scheduler must be one of {_SCHEDULERS}, got {scheduler!r}"
        )
    if bound_sharing not in _SHARING_MODES:
        raise ValueError(
            f"bound_sharing must be one of {_SHARING_MODES}, got {bound_sharing!r}"
        )
    if bound_cadence not in _CADENCES:
        raise ValueError(
            f"bound_cadence must be one of {_CADENCES}, got {bound_cadence!r}"
        )
    cost = cost_model or DEFAULT_QUERY_COST
    raw = getattr(index, "raw", None)
    n_records = int(raw.n_series) if raw is not None else 0
    n_queries = int(batch.n_queries)
    workers = resolve_workers(query_workers)
    mode = batch.mode

    # Indexes without a summary column (the brute-force scan) price
    # their pass at the refine rate — every record is refined, none is
    # lower-bounded.
    config = getattr(index, "config", None)
    cell_us = cost.mindist_cell_us if config is not None else cost.refine_record_us
    est_scan_ms = n_queries * n_records * cell_us / 1000.0
    est_refine_ms = n_records * cost.refine_record_us / 1000.0

    if scheduler == "fixed":
        sharing = "on" if bound_sharing == "on" and mode == "exact" else "off"
        approx_workers = 1 if mode == "approximate" else workers
        return PlanReport(
            scheduler="fixed",
            mode=mode,
            n_queries=n_queries,
            n_records=n_records,
            k=batch.k,
            requested_workers=query_workers,
            workers=approx_workers,
            scan_workers=workers,
            scan_pool_kind=pool_kind,
            pool_kind=pool_kind,
            bound_sharing=sharing,
            bound_cadence=bound_cadence,
            min_fetch_records=1,
            est_scan_ms=est_scan_ms,
            est_refine_ms=est_refine_ms,
            reason="fixed scheduler: requested workers, byte-threshold pools",
        )

    # Scan: clamp the fan-out so each slice amortizes its task spawn.
    # (Recorded for approximate batches too — the brute-force scan
    # answers both modes with the same full pass.)
    est_scan_us = est_scan_ms * 1000.0
    span_us = SCAN_SPAN_TASKS * cost.thread_task_us
    scan_workers = max(1, min(workers, int(est_scan_us // max(span_us, 1e-9))))

    if mode == "approximate":
        # One partition per ~2 queries keeps cache sharing worthwhile.
        approx_workers = max(1, min(workers, n_queries // 2))
        sharing = "off"
        reason = (
            f"approximate batch: {approx_workers} visit-order partitions"
            f" for {n_queries} queries"
        )
        return PlanReport(
            scheduler="adaptive",
            mode=mode,
            n_queries=n_queries,
            n_records=n_records,
            k=batch.k,
            requested_workers=query_workers,
            workers=approx_workers,
            scan_workers=scan_workers,
            scan_pool_kind=pool_kind,
            pool_kind=pool_kind,
            bound_sharing=sharing,
            bound_cadence=bound_cadence,
            min_fetch_records=1,
            est_scan_ms=est_scan_ms,
            est_refine_ms=est_refine_ms,
            reason=reason,
        )
    if pool_kind == "auto":
        word_length = getattr(config, "word_length", 8)
        payload_bytes = n_records * word_length * 2 + n_queries * n_records * 8
        payload_mib = payload_bytes / (1 << 20)
        thread_us = cost.thread_task_us * scan_workers + est_scan_us / max(
            scan_workers, 1
        )
        process_us = (
            cost.process_task_us * scan_workers
            + cost.ship_us_per_mib * payload_mib
            + est_scan_us / max(scan_workers, 1)
        )
        scan_pool_kind = "thread" if thread_us <= process_us else "process"
    else:
        scan_pool_kind = pool_kind
    min_fetch_records = max(
        1,
        min(
            MAX_FETCH_FLOOR_RECORDS,
            int(cost.thread_task_us / max(cost.refine_record_us, 1e-9)),
        ),
    )
    sharing = "on" if bound_sharing == "auto" else bound_sharing
    reason = (
        f"adaptive: scan {scan_workers}/{workers} workers on"
        f" {scan_pool_kind} pool (est {est_scan_ms:.2f} ms), fetch floor"
        f" {min_fetch_records} records/partition, bound sharing {sharing}"
    )
    return PlanReport(
        scheduler="adaptive",
        mode=mode,
        n_queries=n_queries,
        n_records=n_records,
        k=batch.k,
        requested_workers=query_workers,
        workers=workers,
        scan_workers=scan_workers,
        scan_pool_kind=scan_pool_kind,
        pool_kind=pool_kind,
        bound_sharing=sharing,
        bound_cadence=bound_cadence,
        min_fetch_records=min_fetch_records,
        est_scan_ms=est_scan_ms,
        est_refine_ms=est_refine_ms,
        reason=reason,
    )


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
def run_sims_query_batch(
    index,
    batch,
    query_workers: int | None = 1,
    query_pool_kind: str = "auto",
    scheduler: str = "adaptive",
    bound_sharing: str = "auto",
    cost_model: QueryCostModel | None = None,
    wrap_device=None,
    bound_board=None,
    heal_report=None,
) -> BatchReport:
    """Plan and execute one batch on a SIMS-backed Coconut index.

    The shared ``query_batch`` implementation of CoconutTree,
    CoconutTrie and CoconutLSM: builds a :class:`PlanReport` (attached
    to the returned report as ``report.plan``), then dispatches to the
    serial batched engine, the multi-worker exact engine, or the
    partitioned approximate engine.  ``bound_board`` injects a board
    (tests drive adversarial publish schedules through it); ``None``
    lets the engine build one per attempt when the plan shares bounds.
    """
    plan = plan_query_batch(
        batch,
        index,
        cost_model=cost_model,
        query_workers=query_workers,
        pool_kind=query_pool_kind,
        scheduler=scheduler,
        bound_sharing=bound_sharing,
    )
    if batch.mode == "approximate":
        if plan.workers > 1:
            report = parallel_approx_batch(
                index,
                batch,
                workers=plan.workers,
                pool_kind=query_pool_kind,
                wrap_device=wrap_device,
                heal_report=heal_report,
            )
        else:
            report = approx_query_batch(index, batch)
    elif plan.workers > 1:
        report = parallel_sims_query_batch(
            index,
            batch,
            index._prepare_sims_parallel,
            plan.workers,
            pool_kind=query_pool_kind,
            wrap_device=wrap_device,
            bound_sharing=plan.bound_sharing,
            bound_board=bound_board,
            bound_cadence=plan.bound_cadence,
            scan_workers=plan.scan_workers,
            scan_pool_kind=plan.scan_pool_kind,
            min_fetch_records=plan.min_fetch_records,
            heal_report=heal_report,
        )
    else:
        report = sims_query_batch(index, batch, index._prepare_sims)
    report.plan = plan
    return report


def parallel_approx_batch(
    index,
    batch,
    workers: int | None = 2,
    pool_kind: str = "auto",
    wrap_device=None,
    heal_report=None,
) -> BatchReport:
    """Range-partitioned approximate batch on read-only shard sessions.

    The index exposes its batched approximate pass in two halves:
    ``_approx_visit_order(queries)`` returns the per-batch visit order
    (query indices) plus shared context, and
    ``_approx_answer_subset(queries, ctx, order, device=)`` answers a
    contiguous slice of that order with a fresh cache, reads bound to
    ``device``.  The serial ``_approximate_batch`` is exactly "one
    subset spanning the whole order on the parent device", so the
    parallel path's per-query answers are pinned to the serial
    per-batch cache oracle by construction — a cache only dedupes I/O
    charging, never changes a query's candidates.  Partition caches
    are private (a leaf straddling two partitions is read once per
    side — the usual price of private I/O domains);
    ``pool_kind="serial"`` replays the partition plan inline, the
    deterministic stats oracle.  Worker faults heal like the exact
    engine: transients retry on a fresh session, anything harder
    degrades to the serial batched pass on the parent device.
    """
    queries = np.atleast_2d(np.asarray(batch.queries, dtype=np.float64))
    workers = resolve_workers(workers)
    with Measurement(index.disk) as measure:
        order, ctx = index._approx_visit_order(queries)
        chunks = [
            chunk
            for chunk in np.array_split(order, max(1, min(workers, len(order))))
            if len(chunk)
        ]
        if len(chunks) <= 1:
            pairs = index._approx_answer_subset(queries, ctx, order)
        else:

            def attempt(attempt_index: int):
                session = ShardedDisk(
                    index.disk,
                    [(0, 0)] * len(chunks),
                    names=[f"approx-p{p}" for p in range(len(chunks))],
                    read_only=True,
                )

                def run_partition(p: int):
                    device = (
                        session.shards[p]
                        if wrap_device is None
                        else wrap_device(session.shards[p], p, attempt_index)
                    )
                    with BufferPool(device, QUERY_SHARD_POOL_PAGES) as pool:
                        return index._approx_answer_subset(
                            queries, ctx, chunks[p], device=pool
                        )

                with session:
                    if pool_kind == "serial":
                        return [run_partition(p) for p in range(len(chunks))]
                    with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
                        return list(
                            pool.map(run_partition, range(len(chunks)))
                        )

            parts = run_self_healing(
                attempt,
                fallback=lambda: None,
                label="parallel approximate batch",
                report=heal_report,
            )
            if parts is None:
                pairs = index._approx_answer_subset(queries, ctx, order)
            else:
                pairs = [pair for part in parts for pair in part]
        results: list[QueryResult | None] = [None] * len(queries)
        for qi, result in pairs:
            results[qi] = result
        # Queries outside the visit order (an index with nothing to
        # visit) answer the serial default: no match.
        results = [r if r is not None else QueryResult() for r in results]
    ids = [[r.answer_idx] if r.answer_idx >= 0 else [] for r in results]
    distances = [
        [r.distance] if r.answer_idx >= 0 else [] for r in results
    ]
    return BatchReport(
        results=results,
        knn_ids=ids,
        knn_distances=distances,
        io=measure.io,
        simulated_io_ms=measure.simulated_io_ms,
        wall_s=measure.wall_s,
    )
