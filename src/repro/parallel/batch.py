"""Batched exact-kNN executor: one shared SIMS pass for many queries.

Answering queries one at a time repeats the two expensive steps of
Algorithm 5 per query: loading/scanning the summary column and fetching
unpruned records from disk.  A batch shares both.  The engine computes
every query's lower-bound vector over the same in-memory summaries,
takes the *union* of unpruned positions, and walks that union once in
ascending storage order — each fetched block of records is evaluated
against every query that still needs it, so a page read once serves the
whole batch (the bufferpool never sees the same page twice in a pass).

Results are exact and identical to the per-query engine: pruning uses
per-query thresholds that only ever shrink, so every record that could
beat a query's k-th best distance is visited on that query's behalf.
The cross-index equivalence suite asserts this against the serial-scan
oracle and the per-query path for every index variant.
"""

from __future__ import annotations

import numpy as np

from ..core.knn import KNNOutcome, _BoundedMaxHeap
from ..core.sims import SIMS_BLOCK_RECORDS
from ..indexes.base import BatchReport, Measurement, QueryResult
from ..series.distance import early_abandon_euclidean_block
from ..summaries.paa import paa
from ..summaries.sax import SAXConfig, mindist_paa_to_words

#: Cap on the Q x N lower-bound matrix the engine materializes; larger
#: batches are split into query sub-batches (fetch sharing is then per
#: sub-batch, but memory stays ~128 MB instead of growing with Q x N).
MAX_MINDIST_CELLS = 16_000_000


def batched_exact_knn(
    queries: np.ndarray,
    k: int,
    words: np.ndarray,
    config: SAXConfig,
    fetch,
    seeds: list[list[tuple[float, int]]] | None = None,
    block_records: int = SIMS_BLOCK_RECORDS,
) -> list[KNNOutcome]:
    """Exact k nearest neighbors for every query in one shared pass.

    Parameters mirror :func:`repro.core.knn.sims_knn_scan`, except that
    ``queries`` is a (Q, n) batch and ``seeds`` holds one (distance,
    id) seed list per query (ids < 0 are ignored).  ``fetch`` is called
    with ascending positions exactly once per unpruned block — the same
    skip-sequential contract as the per-query engine, shared batch-wide.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    n_queries = len(queries)
    n = len(words)
    if n_queries > 1 and n_queries * n > MAX_MINDIST_CELLS:
        half = n_queries // 2
        seeds = seeds or [[] for _ in range(n_queries)]
        return batched_exact_knn(
            queries[:half], k, words, config, fetch, seeds[:half], block_records
        ) + batched_exact_knn(
            queries[half:], k, words, config, fetch, seeds[half:], block_records
        )
    heaps = seeded_heaps(n_queries, k, seeds)
    if n == 0 or n_queries == 0:
        return [
            _outcome(heap, visited=0, n_records=n) for heap in heaps
        ]
    query_paa = paa(queries, config.word_length)
    mindists = np.stack(
        [mindist_paa_to_words(query_paa[i], words, config) for i in range(n_queries)]
    )
    thresholds = np.array([heap.threshold for heap in heaps])
    union = np.nonzero((mindists < thresholds[:, None]).any(axis=0))[0]
    visited = walk_candidate_blocks(
        queries, heaps, mindists, union, fetch, block_records
    )
    return [
        _outcome(heap, visited=int(visited[i]), n_records=n)
        for i, heap in enumerate(heaps)
    ]


def seeded_heaps(
    n_queries: int,
    k: int,
    seeds: list[list[tuple[float, int]]] | None,
) -> list[_BoundedMaxHeap]:
    """One bounded heap per query, primed with its seed list."""
    heaps = [_BoundedMaxHeap(k) for _ in range(n_queries)]
    for heap, pairs in zip(heaps, seeds or []):
        for distance, identifier in pairs:
            if identifier >= 0:
                heap.offer(float(distance), int(identifier))
    return heaps


def walk_candidate_blocks(
    queries: np.ndarray,
    heaps: list[_BoundedMaxHeap],
    mindists: np.ndarray,
    candidates: np.ndarray,
    fetch,
    block_records: int,
    bound_board=None,
) -> np.ndarray:
    """The shared SIMS fetch loop; returns per-query visited counts.

    Walks ``candidates`` (ascending positions into ``mindists``
    columns) block by block: thresholds shrink as true distances come
    in, so each block is re-filtered per query before the union of
    survivors is fetched once.  Both the serial batched engine and
    each worker of the parallel engine execute exactly this loop —
    sharing it is what keeps their pruning rules in lockstep, which
    the bit-identical-answers contract rests on.

    ``bound_board`` (a :class:`repro.parallel.sched.SharedBoundBoard`
    or any object with ``read()``/``publish(bounds)``) tightens the
    loop with bounds published by concurrent workers.  The effective
    threshold is the **running minimum** of the local heap threshold
    and every board snapshot seen so far: every published value is a
    heap's k-th best over a subset of the global offers, hence a
    certified upper bound on the final k-th distance, so the extra
    pruning removes only records the serial engine's answer provably
    excludes — and the running-min discipline guarantees the visited
    set never grows relative to the board-free loop (the monotone
    non-increasing visits contract; see ``docs/queries.md``).  Rows
    abandoned strictly above a shared bound may offer ``inf`` into a
    not-yet-full heap; a finite shared bound certifies that k real
    offers at or below it exist globally, so the coordinator merge
    displaces every such ``inf`` before it can reach an answer.
    """
    n_queries = len(queries)
    visited = np.zeros(n_queries, dtype=np.int64)
    shared = (
        bound_board.read().astype(np.float64, copy=True)
        if bound_board is not None
        else None
    )
    for start in range(0, len(candidates), block_records):
        block = candidates[start : start + block_records]
        thresholds = np.array([heap.threshold for heap in heaps])
        if shared is not None:
            np.minimum(shared, bound_board.read(), out=shared)
            np.minimum(shared, thresholds, out=shared)
            thresholds = shared
        need = mindists[:, block] < thresholds[:, None]
        alive = need.any(axis=0)
        block, need = block[alive], need[:, alive]
        if len(block) == 0:
            continue
        series, identifiers = fetch(block)
        for i in range(n_queries):
            rows = np.nonzero(need[i])[0]
            if len(rows) == 0:
                continue
            # Fused refine against this query's block-start threshold:
            # abandoned rows (inf) sit strictly above it, so their
            # offers were doomed regardless of how the threshold
            # shrinks within the block — heap evolution is
            # bit-identical to the full euclidean_batch pass.
            distances = early_abandon_euclidean_block(
                queries[i], series[rows], thresholds[i]
            )
            visited[i] += len(rows)
            for distance, identifier in zip(distances, identifiers[rows]):
                heaps[i].offer(float(distance), int(identifier))
        if bound_board is not None:
            bound_board.publish(
                np.array([heap.threshold for heap in heaps])
            )
    return visited


def _outcome(heap: _BoundedMaxHeap, visited: int, n_records: int) -> KNNOutcome:
    items = heap.sorted_items()
    return KNNOutcome(
        answer_ids=[identifier for _, identifier in items],
        distances=[distance for distance, _ in items],
        visited_records=visited,
        pruned_fraction=1.0 - (visited / n_records) if n_records else 0.0,
    )


def sims_query_batch(index, batch, prepare) -> BatchReport:
    """Shared ``query_batch`` implementation for SIMS-backed indexes.

    ``prepare`` runs inside the measurement and returns the (words,
    fetch) pair of the index — loading summaries there charges their
    I/O to the batch, shared across all queries.  Each query is seeded
    with its approximate answer, exactly as the per-query engines do.
    """
    queries = np.atleast_2d(np.asarray(batch.queries, dtype=np.float64))
    with Measurement(index.disk) as measure:
        words, fetch = prepare()
        seeds = []
        for query in queries:
            approx = index.approximate_search(query)
            seeds.append([(approx.distance, approx.answer_idx)])
        outcomes = batched_exact_knn(
            queries, batch.k, words, index.config, fetch, seeds
        )
    return build_batch_report(outcomes, measure)


def approx_query_batch(index, batch) -> BatchReport:
    """Shared-leaf-read approximate batch (one read per distinct leaf).

    Indexes whose approximate search inspects a leaf (or a small range
    of physically adjacent leaves) around the query's key implement
    ``_approximate_batch(queries)``: the batch is answered in ascending
    target-leaf order with a per-batch leaf cache, so a leaf shared by
    several queries is read once and the visits walk the leaf file
    forward.  Answers — indexes, distances, visited counts — are
    identical to issuing :meth:`approximate_search` per query; only the
    I/O totals shrink.
    """
    queries = np.atleast_2d(np.asarray(batch.queries, dtype=np.float64))
    with Measurement(index.disk) as measure:
        results = index._approximate_batch(queries)
    ids = [[r.answer_idx] if r.answer_idx >= 0 else [] for r in results]
    distances = [[r.distance] if r.answer_idx >= 0 else [] for r in results]
    return BatchReport(
        results=results,
        knn_ids=ids,
        knn_distances=distances,
        io=measure.io,
        simulated_io_ms=measure.simulated_io_ms,
        wall_s=measure.wall_s,
    )


def build_batch_report(
    outcomes: list[KNNOutcome], measure: Measurement
) -> BatchReport:
    """Package per-query kNN outcomes as the uniform batch report."""
    results = []
    for outcome in outcomes:
        results.append(
            QueryResult(
                answer_idx=outcome.answer_ids[0] if outcome.answer_ids else -1,
                distance=(
                    outcome.distances[0] if outcome.distances else float("inf")
                ),
                visited_records=outcome.visited_records,
                pruned_fraction=outcome.pruned_fraction,
            )
        )
    return BatchReport(
        results=results,
        knn_ids=[list(outcome.answer_ids) for outcome in outcomes],
        knn_distances=[list(outcome.distances) for outcome in outcomes],
        io=measure.io,
        simulated_io_ms=measure.simulated_io_ms,
        wall_s=measure.wall_s,
    )
