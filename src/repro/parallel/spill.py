"""Sharded parallel merging of file-backed (spilled) sorted runs.

The in-memory range-partitioned merge (:mod:`repro.parallel.merge`)
cannot touch *spilled* runs: they live on the simulated disk, and a
:class:`repro.storage.disk.SimulatedDisk` is a single I/O domain — one
head, one set of counters, no concurrency.  This module merges spilled
runs on a worker pool by giving every partition its own I/O domain:

1. splitter keys are sampled from the runs' in-memory key mirrors
   (:func:`repro.parallel.merge.sample_splitters` — the mirrors are the
   sortable summarizations themselves, which the paper's premise puts
   in main memory, mirroring how ``CoconutLSM`` already keeps each
   run's key column resident);
2. every run is cut at the splitters with the shared ``side="left"``
   rule (:func:`repro.parallel.merge.run_cut_positions`), so all
   records of equal key land in one partition and ties keep resolving
   by (run order, position) — the stable-merge invariant;
3. a :class:`repro.storage.disk.ShardedDisk` session fences the parent
   device and hands each partition a :class:`~repro.storage.disk.
   DiskShard`; the worker reads its record slices of every source run
   through read-only :class:`~repro.storage.pager.PagedFile` views
   bound to a *per-shard* :class:`~repro.storage.bufferpool.
   BufferPool`, merges them with the block-wise engine
   (:mod:`repro.storage.merge`), and writes its slice of the output —
   a disjoint extent of pre-allocated pages — through its shard;
4. pages straddling a partition byte boundary belong to no shard; the
   workers return those edge fragments and the coordinator writes the
   assembled boundary pages on the parent after detach, in page order.

The output file's byte stream is therefore *identical* to what the
serial streaming merge would have written — records packed contiguously
from byte zero — and the merged record stream is bit-identical to the
serial stable merge for any splitter sample.

Determinism contract
--------------------
Each shard's access sequence is a pure function of (sources, splitters,
buffer size) — never of pool scheduling — and each shard classifies
against its own head.  Running the same plan inline
(``pool_kind="serial"``) is the **serial replay oracle**: the
reconciled :class:`~repro.storage.cost.DiskStats` of a threaded run
are bit-identical to it for any worker count.  The equivalence suite
(``tests/test_sharded_storage.py``) property-tests both halves: stream
equality against the fully-serial merge, stats equality against the
serial replay.

Worker pools are threads (or inline): the simulated device is shared
state that worker processes could not mutate, and the merge payloads
here are multi-page NumPy blocks whose searchsorted/argsort work
releases the GIL — the regime where threads win anyway (see
:func:`repro.parallel.merge.choose_pool_kind`).
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..storage.bufferpool import BufferPool
from ..storage.disk import PageError, ShardedDisk, SimulatedDisk
from ..storage.merge import (
    MERGE_ENGINES,
    RunCursor,
    _ChunkEmitter,
    merge_stream,
)
from ..storage.pager import PagedFile
from .heal import HEAL_RETRIES, HealReport, RetryPolicy, run_self_healing
from .merge import run_cut_positions, sample_splitters

#: Pages cached by each worker's shard-scoped read pool.  Source reads
#: stream forward and never revisit a page, so the pool affects no
#: counter — it exists so every worker's reads go through its own
#: cache domain, never a shared one.
SHARD_POOL_PAGES = 8


@dataclass
class ShardedMergeResult:
    """Outcome of one sharded group merge."""

    file: PagedFile  # merged run, bound to the parent disk
    n_records: int
    n_partitions: int
    splitters: np.ndarray
    keys: np.ndarray | None = None  # merged key column (collect="keys"/"records")
    payloads: np.ndarray | None = None  # merged payloads (collect="records")
    n_heal_attempts: int = 1  # attempts the healing loop spent on this merge


class _ExtentWriter:
    """Stream one partition's output bytes into its shard extent.

    Bytes land page by page: full pages inside the partition's interior
    page range ``[fp, ep)`` are written through the shard; bytes on the
    boundary pages shared with neighboring partitions are returned as
    ``(page, offset, data)`` fragments for the coordinator to assemble
    after the session detaches.
    """

    def __init__(self, device, base_page: int, byte_lo: int, byte_hi: int):
        self.device = device
        self.base_page = base_page
        self.page_size = device.page_size
        self.byte_lo = byte_lo
        self.byte_hi = byte_hi
        self.fp = -(-byte_lo // self.page_size)
        self.ep = max(self.fp, byte_hi // self.page_size)
        self.pos = byte_lo
        self.buf = bytearray()
        self.fragments: list[tuple[int, int, bytes]] = []
        # Integrity sidecar of the shard session (None when disabled):
        # interior pages record the *intended* payload here at write
        # time — above any FaultyDevice wrap, so an in-flight flip can
        # never bless itself — and reconcile into the parent map at
        # detach along with the pages.
        self.checksums = getattr(device, "checksums", None)

    def push(self, data: bytes) -> None:
        if self.buf:
            data = bytes(self.buf) + data
            self.buf.clear()
        view = memoryview(data)
        at, n = 0, len(data)
        page_size = self.page_size
        while at < n:
            page, offset = divmod(self.pos, page_size)
            if self.fp <= page < self.ep:
                # Interior pages always start aligned; hold bytes until
                # a full page is ready, then write it through the shard
                # (the view splices straight into the shard arena).
                if n - at < page_size:
                    break
                self.device.write_page(
                    self.base_page + page, view[at : at + page_size]
                )
                if self.checksums is not None:
                    self.checksums.record_page(
                        self.base_page + page, view[at : at + page_size]
                    )
                at += page_size
                self.pos += page_size
            else:
                take = min(n - at, page_size - offset)
                self.fragments.append((page, offset, bytes(view[at : at + take])))
                at += take
                self.pos += take
        if at < n:
            self.buf += view[at:]

    def close(self) -> None:
        if self.pos != self.byte_hi or self.buf:
            raise PageError(
                f"partition writer stopped at byte {self.pos} of "
                f"[{self.byte_lo}, {self.byte_hi}) with {len(self.buf)} "
                "bytes pending"
            )


def _merge_partition_to_shard(
    shard,
    sources: "list[tuple[PagedFile, int, np.ndarray]]",
    cuts: "list[np.ndarray]",
    p: int,
    rec_dtype: np.dtype,
    buffer_records: int,
    byte_lo: int,
    byte_hi: int,
    out_first: int,
    engine: str,
    collect: str | None,
):
    """One partition's work unit: read slices, merge, write the extent.

    Every I/O lands on ``shard`` (reads via a shard-scoped buffer
    pool), so the access sequence — and with it the classification —
    is independent of the other partitions and of pool scheduling.
    """
    key_parts: list[np.ndarray] = []
    payload_parts: list[np.ndarray] = []
    with BufferPool(shard, capacity_pages=SHARD_POOL_PAGES) as pool:
        slices = []
        for (file, _, _), cut in zip(sources, cuts):
            lo, hi = int(cut[p]), int(cut[p + 1])
            if hi > lo:
                slices.append((file.attach(pool), hi - lo, lo))
        writer = _ExtentWriter(shard, out_first, byte_lo, byte_hi)
        for chunk_keys, chunk_payloads in merge_stream(
            engine, slices, rec_dtype, buffer_records
        ):
            block = np.empty(len(chunk_keys), dtype=rec_dtype)
            block["k"] = chunk_keys
            block["v"] = chunk_payloads
            writer.push(block.tobytes())
            if collect:
                key_parts.append(chunk_keys)
                if collect == "records":
                    payload_parts.append(chunk_payloads)
        writer.close()

    def _concat(parts: "list[np.ndarray]", field: str) -> np.ndarray:
        if parts:
            return np.concatenate(parts)
        empty = np.empty(0, dtype=rec_dtype)
        return empty[field].copy()

    keys = _concat(key_parts, "k") if collect else None
    payloads = _concat(payload_parts, "v") if collect == "records" else None
    return writer.fragments, keys, payloads


def _write_boundary_pages(
    disk: SimulatedDisk,
    out_first: int,
    fragments: "list[tuple[int, int, bytes]]",
) -> None:
    """Assemble and write the pages that straddle partition boundaries.

    Fragments are grouped per page and must tile it contiguously from
    offset zero (the last page of the file may end early).  Pages are
    written in ascending order on the parent — a deterministic
    coordinator epilogue, the same for every pool kind.
    """
    by_page: dict[int, list[tuple[int, bytes]]] = {}
    for page, offset, data in fragments:
        by_page.setdefault(page, []).append((offset, data))
    checksums = getattr(disk, "checksums", None)
    for page in sorted(by_page):
        pieces = sorted(by_page[page])
        at = 0
        parts = []
        for offset, data in pieces:
            if offset != at:
                raise PageError(
                    f"boundary page {page} has a gap at byte {at} "
                    f"(next fragment at {offset})"
                )
            parts.append(data)
            at += len(data)
        assembled = b"".join(parts)
        disk.write_page(out_first + page, assembled)
        if checksums is not None:
            checksums.record_page(out_first + page, assembled)


def sharded_spill_merge(
    disk: SimulatedDisk,
    sources: "list[tuple[PagedFile, int, np.ndarray]]",
    rec_dtype: np.dtype,
    n_partitions: int,
    buffer_records: int,
    pool_kind: str = "thread",
    engine: str = "blockwise",
    splitters: np.ndarray | None = None,
    cuts: "list[np.ndarray] | None" = None,
    collect: str | None = None,
    out_name: str = "sharded-merge",
    wrap_device=None,
    heal_retries: "int | None" = None,
    heal_policy: "RetryPolicy | None" = None,
    heal_report: "HealReport | None" = None,
) -> ShardedMergeResult:
    """Merge spilled runs into one new run via per-partition shards.

    Parameters
    ----------
    sources:
        ``(file, n_records, keys)`` per run — the run file on ``disk``,
        its record count, and its in-memory key mirror (used only for
        splitter sampling and cutting; no planning I/O).
    n_partitions:
        Partitions requested; the effective count may be lower when the
        key space yields fewer distinct splitters.  The I/O plan — and
        therefore every reconciled counter — depends only on
        (sources, splitters, buffer_records), never on the pool.
    pool_kind:
        ``"serial"`` executes partitions inline in partition order (the
        serial replay oracle); anything else runs them on a thread pool
        sized to the partition count.
    splitters:
        Explicit splitter keys (ascending, deduplicated) override the
        sample — the equivalence property is quantified over them.
    cuts:
        Precomputed per-run cut positions for ``splitters`` (e.g. from
        :func:`repro.storage.fence.fenced_cut_positions`); with them
        the sources' key columns may be ``None`` — planning needs no
        mirrors at all.
    collect:
        ``"keys"`` returns the merged key column (cascade passes need
        it to cut the next pass); ``"records"`` returns keys and
        payloads (LSM compaction mirrors).
    wrap_device:
        Optional ``(shard, partition, attempt) -> device`` fault seam:
        every partition's I/O is routed through its return value.  When
        an attempt raises a device fault the session aborts (parent
        unfenced, output extent untouched) and transients are retried
        per ``heal_policy`` (or the legacy ``heal_retries`` override) —
        a successful retry re-issues the same plan against the same
        pre-allocated extent, so the result and reconciled stats are
        bit-identical to a fault-free run.  Non-transient faults
        propagate; the caller degrades (e.g. ``CoconutLSM`` falls back
        to its serial compaction).  Attempt counts land on the result's
        ``n_heal_attempts`` and, when given, on ``heal_report``.
    """
    if engine not in MERGE_ENGINES:
        raise ValueError(f"engine must be one of {MERGE_ENGINES}, got {engine!r}")
    _validate_pool_kind(pool_kind)
    splitters, cuts = _cut_sources(sources, n_partitions, splitters, cuts)
    n_parts = len(splitters) + 1
    itemsize = rec_dtype.itemsize
    page_size = disk.page_size
    # Partition record counts -> output byte ranges in the packed layout.
    part_records = np.sum(
        [np.diff(cut) for cut in cuts], axis=0, dtype=np.int64
    )
    record_starts = np.concatenate([[0], np.cumsum(part_records)])
    total_records = int(record_starts[-1])
    if total_records == 0:
        raise ValueError("sharded_spill_merge requires non-empty sources")
    total_pages = -(-total_records * itemsize // page_size)
    out_first = disk.allocate(total_pages)
    byte_ranges = [
        (int(record_starts[p]) * itemsize, int(record_starts[p + 1]) * itemsize)
        for p in range(n_parts)
    ]
    extents = []
    for byte_lo, byte_hi in byte_ranges:
        fp = -(-byte_lo // page_size)
        ep = max(fp, byte_hi // page_size)
        extents.append((out_first + fp, ep - fp))
    def attempt(attempt_index: int):
        # A fresh session per attempt: a faulting attempt aborts on
        # exit (parent unfenced, extent untouched, no stats), so a
        # retry re-issues the identical plan against a clean slate.
        session = ShardedDisk(
            disk, extents, names=[f"{out_name}-p{p}" for p in range(n_parts)]
        )
        with session as shards:
            tasks = [
                (
                    shards[p]
                    if wrap_device is None
                    else wrap_device(shards[p], p, attempt_index),
                    sources,
                    cuts,
                    p,
                    rec_dtype,
                    buffer_records,
                    byte_ranges[p][0],
                    byte_ranges[p][1],
                    out_first,
                    engine,
                    collect,
                )
                for p in range(n_parts)
            ]
            if pool_kind == "serial" or n_parts == 1:
                return [_merge_partition_to_shard(*task) for task in tasks]
            with ThreadPoolExecutor(max_workers=n_parts) as executor:
                return list(
                    executor.map(lambda task: _merge_partition_to_shard(*task), tasks)
                )

    local_report = HealReport()
    try:
        results = run_self_healing(
            attempt,
            retries=heal_retries,
            policy=heal_policy,
            report=local_report,
            label=f"sharded spill merge {out_name!r}",
        )
    finally:
        # Merge even when the fault propagates: the caller's degraded
        # serial compaction still wants the attempts it paid for.
        if heal_report is not None:
            heal_report.merge(local_report)
    fragments = [piece for frags, _, _ in results for piece in frags]
    _write_boundary_pages(disk, out_first, fragments)
    keys = payloads = None
    if collect:
        keys = np.concatenate([k for _, k, _ in results])
    if collect == "records":
        payloads = np.concatenate([v for _, _, v in results])
    file = PagedFile.from_extent(disk, out_first, total_pages, name=out_name)
    return ShardedMergeResult(
        file=file,
        n_records=total_records,
        n_partitions=n_parts,
        splitters=splitters,
        keys=keys,
        payloads=payloads,
        n_heal_attempts=local_report.n_attempts,
    )


#: Chunks buffered per partition stream before backpressure kicks in.
STREAM_QUEUE_CHUNKS = 2


class _PairEmitter:
    """Re-chunk (keys, payloads) pairs to the serial engines' shapes.

    Same contract as :class:`repro.storage.merge._ChunkEmitter` — full
    ``out_records`` chunks, then one partial — but fed with the column
    pairs the merge streams yield, avoiding a structured repack.
    """

    def __init__(self, rec_dtype: np.dtype, out_records: int):
        self.buf = np.empty(max(1, out_records), dtype=rec_dtype)
        self.filled = 0

    def push(self, keys: np.ndarray, payloads: np.ndarray):
        cap = len(self.buf)
        at = 0
        while at < len(keys):
            n = min(len(keys) - at, cap - self.filled)
            self.buf["k"][self.filled : self.filled + n] = keys[at : at + n]
            self.buf["v"][self.filled : self.filled + n] = payloads[at : at + n]
            self.filled += n
            at += n
            if self.filled == cap:
                yield self.buf["k"].copy(), self.buf["v"].copy()
                self.filled = 0

    def flush(self):
        if self.filled:
            yield (
                self.buf["k"][: self.filled].copy(),
                self.buf["v"][: self.filled].copy(),
            )
            self.filled = 0


def _validate_pool_kind(pool_kind: str) -> None:
    """Reject unknown kinds instead of silently running threaded.

    ``"serial"`` executes inline (the replay oracle); ``"thread"``,
    ``"process"`` and ``"auto"`` all run the thread pool here — worker
    processes cannot mutate the shared simulated device, and the merge
    payloads are multi-page NumPy blocks, the regime where threads win
    anyway (:func:`repro.parallel.merge.choose_pool_kind`).
    """
    if pool_kind not in ("serial", "thread", "process", "auto"):
        raise ValueError(f"unknown pool kind {pool_kind!r}")


def _cut_sources(sources, n_partitions, splitters, cuts=None):
    """Shared planning: validate sources, sample splitters, cut runs.

    Precomputed ``cuts`` (with their ``splitters``) skip the key
    mirrors entirely — the fence-planned cascade
    (:mod:`repro.storage.fence`) cuts runs from per-page zone maps, so
    its sources carry ``None`` key columns.
    """
    if not sources:
        raise ValueError("sharded merge requires at least one source run")
    if cuts is not None:
        if splitters is None:
            raise ValueError("explicit cuts require their splitters")
        if len(cuts) != len(sources):
            raise ValueError(
                f"{len(cuts)} cut arrays for {len(sources)} sources"
            )
        for (file, n_records, _), cut in zip(sources, cuts):
            cut = np.asarray(cut)
            if (
                len(cut) != len(splitters) + 2
                or cut[0] != 0
                or cut[-1] != n_records
                or np.any(np.diff(cut) < 0)
            ):
                raise ValueError(
                    f"run {file.name!r}: cut positions {cut!r} do not "
                    f"tile [0, {n_records}) at {len(splitters)} splitters"
                )
        return splitters, list(cuts)
    for file, n_records, keys in sources:
        if len(keys) != n_records:
            raise ValueError(
                f"run {file.name!r}: {n_records} records but key mirror "
                f"of {len(keys)}"
            )
    if splitters is None:
        splitters = sample_splitters(
            [keys for _, _, keys in sources], max(1, n_partitions)
        )
    cuts = [run_cut_positions(keys, splitters) for _, _, keys in sources]
    return splitters, cuts


def _partition_chunks(shard, sources, cuts, p, rec_dtype, buffer_records, engine):
    """Stream one partition's merged chunks through its shard (reads only)."""
    with BufferPool(shard, capacity_pages=SHARD_POOL_PAGES) as pool:
        slices = []
        for (file, _, _), cut in zip(sources, cuts):
            lo, hi = int(cut[p]), int(cut[p + 1])
            if hi > lo:
                slices.append((file.attach(pool), hi - lo, lo))
        yield from merge_stream(engine, slices, rec_dtype, buffer_records)


def sharded_stream_merge(
    disk: SimulatedDisk,
    sources: "list[tuple[PagedFile, int, np.ndarray]]",
    rec_dtype: np.dtype,
    n_partitions: int,
    buffer_records: int,
    pool_kind: str = "thread",
    engine: str = "blockwise",
    splitters: np.ndarray | None = None,
    cuts: "list[np.ndarray] | None" = None,
    wrap_device=None,
):
    """Merge spilled runs into a *consumer stream*, partitions in parallel.

    The final pass of a merge cascade does not write a run — it feeds
    the bulk loader — so materializing it (write + read back) would
    waste two passes over the data.  This generator instead runs the
    per-partition merges concurrently on read-only shards and yields
    the partitions' chunks in range order, re-chunked to the exact
    shapes the serial engine emits; workers ahead of the consumer park
    on bounded queues (:data:`STREAM_QUEUE_CHUNKS` chunks each), so
    transient memory stays proportional to the partition count.

    Same determinism contract as :func:`sharded_spill_merge` — the
    shards perform reads only, each against its own head, and
    reconciliation on detach is in partition order, so the stats are
    bit-identical between pooled and ``pool_kind="serial"`` (inline)
    execution.

    ``wrap_device`` is the same fault seam as in
    :func:`sharded_spill_merge` (called with ``attempt`` fixed at 0).
    A generator cannot retry on behalf of a consumer that has already
    received chunks, so a device fault propagates after the session
    aborts — the parent is unfenced and the *caller* heals (retries the
    whole stream or degrades to the serial merge).
    """
    if engine not in MERGE_ENGINES:
        raise ValueError(f"engine must be one of {MERGE_ENGINES}, got {engine!r}")
    _validate_pool_kind(pool_kind)
    splitters, cuts = _cut_sources(sources, n_partitions, splitters, cuts)
    n_parts = len(splitters) + 1
    emitter = _PairEmitter(rec_dtype, buffer_records)
    session = ShardedDisk(
        disk,
        [(0, 0)] * n_parts,
        names=[f"stream-merge-p{p}" for p in range(n_parts)],
        read_only=True,
    )
    with session as shards:
        devices = [
            shards[p] if wrap_device is None else wrap_device(shards[p], p, 0)
            for p in range(n_parts)
        ]
        if pool_kind == "serial" or n_parts == 1:
            for p in range(n_parts):
                for chunk_keys, chunk_payloads in _partition_chunks(
                    devices[p], sources, cuts, p, rec_dtype,
                    buffer_records, engine,
                ):
                    yield from emitter.push(chunk_keys, chunk_payloads)
            yield from emitter.flush()
            return
        queues = [queue.Queue(maxsize=STREAM_QUEUE_CHUNKS) for _ in range(n_parts)]

        def feed(p: int) -> None:
            try:
                for chunk in _partition_chunks(
                    devices[p], sources, cuts, p, rec_dtype,
                    buffer_records, engine,
                ):
                    queues[p].put(chunk)
                queues[p].put(None)
            except BaseException as error:  # surfaced by the consumer
                queues[p].put(error)

        threads = [
            threading.Thread(target=feed, args=(p,), daemon=True)
            for p in range(n_parts)
        ]
        for thread in threads:
            thread.start()
        try:
            for p in range(n_parts):
                while True:
                    item = queues[p].get()
                    if item is None:
                        break
                    if isinstance(item, BaseException):
                        raise item
                    yield from emitter.push(item[0], item[1])
            yield from emitter.flush()
        finally:
            # Keep draining while joining: a producer parked on a full
            # queue must be released even when the consumer abandons
            # the stream mid-way.
            for p, thread in enumerate(threads):
                while thread.is_alive():
                    try:
                        while True:
                            queues[p].get_nowait()
                    except queue.Empty:
                        pass
                    thread.join(timeout=0.01)


def stream_run_file(
    file: PagedFile,
    n_records: int,
    rec_dtype: np.dtype,
    buffer_records: int,
):
    """Yield a materialized run back as (keys, payloads) chunks.

    Chunk shapes follow the serial merge engines — full
    ``buffer_records`` chunks, then one partial — so a parallel final
    pass that materialized its output hands downstream consumers the
    exact stream the serial merge would have yielded.
    """
    cursor = RunCursor(file, n_records, rec_dtype, buffer_records)
    emitter = _ChunkEmitter(rec_dtype, buffer_records)
    while cursor.buffered():
        yield from emitter.push(cursor.take_all())
        cursor.refill()
    yield from emitter.flush()
