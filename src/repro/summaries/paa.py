"""Piecewise Aggregate Approximation (PAA).

PAA partitions a series into equal-sized segments and represents each
by its mean value (paper Fig. 1).  It is the substrate of SAX (which
discretizes PAA values into symbols) and of the R-tree baseline (which
indexes the PAA points directly).
"""

from __future__ import annotations

import numpy as np


def segment_boundaries(length: int, n_segments: int) -> np.ndarray:
    """Start offsets of each segment (plus the final end offset).

    When ``length`` is not divisible by ``n_segments`` the segments
    differ in size by at most one point.
    """
    if n_segments <= 0:
        raise ValueError(f"n_segments must be positive, got {n_segments}")
    if length < n_segments:
        raise ValueError(
            f"cannot split length {length} into {n_segments} segments"
        )
    return (np.arange(n_segments + 1) * length) // n_segments


def paa(batch: np.ndarray, n_segments: int) -> np.ndarray:
    """PAA means for a batch of series; returns (N, n_segments) float64."""
    batch = np.asarray(batch, dtype=np.float64)
    if batch.ndim == 1:
        batch = batch[None, :]
    bounds = segment_boundaries(batch.shape[1], n_segments)
    sums = np.add.reduceat(batch, bounds[:-1], axis=1)
    sizes = np.diff(bounds).astype(np.float64)
    return sums / sizes


def paa_lower_bound(
    query_paa: np.ndarray, candidate_paa: np.ndarray, length: int
) -> np.ndarray:
    """Lower bound on ED between series from their PAA representations.

    ``DR(Q, C) = sqrt(sum_i l_i * (q_i - c_i)^2)`` where ``l_i`` is the
    segment size — the classic PAA bounding lemma (Keogh et al. 2001).
    Accepts a single candidate or a batch.
    """
    query_paa = np.asarray(query_paa, dtype=np.float64)
    candidate_paa = np.atleast_2d(np.asarray(candidate_paa, dtype=np.float64))
    sizes = np.diff(segment_boundaries(length, query_paa.shape[-1]))
    gaps = (candidate_paa - query_paa[None, :]) ** 2
    out = np.sqrt(np.sum(gaps * sizes[None, :], axis=1))
    return out if out.shape[0] > 1 else out


def reconstruct(paa_values: np.ndarray, length: int) -> np.ndarray:
    """Expand PAA values back to a step-function series of ``length``."""
    paa_values = np.atleast_2d(np.asarray(paa_values, dtype=np.float64))
    bounds = segment_boundaries(length, paa_values.shape[1])
    out = np.empty((paa_values.shape[0], length))
    for i in range(paa_values.shape[1]):
        out[:, bounds[i] : bounds[i + 1]] = paa_values[:, i : i + 1]
    return out
