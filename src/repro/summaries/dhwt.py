"""Discrete Haar Wavelet Transform (DHWT).

Substrate for the Vertical baseline (Kashyap & Karras), which stores
wavelet coefficients level by level and answers queries by scanning
resolutions stepwise.  The orthonormal Haar transform preserves
Euclidean distances exactly, so a prefix of the coefficients yields a
lower bound and the full set recovers the true distance.
"""

from __future__ import annotations

import numpy as np


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def haar_transform(batch: np.ndarray) -> np.ndarray:
    """Orthonormal Haar coefficients, coarsest first.

    Output layout per row: ``[approx, d_0, d_1x2, d_2x4, ...]`` — the
    overall (scaled) average, then detail levels of growing resolution.
    Requires power-of-two length.
    """
    batch = np.asarray(batch, dtype=np.float64)
    if batch.ndim == 1:
        batch = batch[None, :]
    n = batch.shape[1]
    if not is_power_of_two(n):
        raise ValueError(f"Haar transform requires power-of-two length, got {n}")
    details: list[np.ndarray] = []
    current = batch.copy()
    while current.shape[1] > 1:
        even = current[:, 0::2]
        odd = current[:, 1::2]
        details.append((even - odd) / np.sqrt(2.0))
        current = (even + odd) / np.sqrt(2.0)
    # current is the (N, 1) approximation; details are finest-first.
    return np.concatenate([current] + details[::-1], axis=1)


def inverse_haar_transform(coefficients: np.ndarray) -> np.ndarray:
    """Invert :func:`haar_transform` exactly."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    if coefficients.ndim == 1:
        coefficients = coefficients[None, :]
    n = coefficients.shape[1]
    if not is_power_of_two(n):
        raise ValueError(f"expected power-of-two width, got {n}")
    current = coefficients[:, :1].copy()
    offset = 1
    while offset < n:
        detail = coefficients[:, offset : offset * 2]
        expanded = np.empty((coefficients.shape[0], offset * 2))
        expanded[:, 0::2] = (current + detail) / np.sqrt(2.0)
        expanded[:, 1::2] = (current - detail) / np.sqrt(2.0)
        current = expanded
        offset *= 2
    return current


def level_slices(length: int) -> list[slice]:
    """Column ranges of each resolution level in transform output.

    Level 0 is the single approximation coefficient; level ``l >= 1``
    holds ``2**(l-1)`` detail coefficients.
    """
    if not is_power_of_two(length):
        raise ValueError(f"expected power-of-two length, got {length}")
    slices = [slice(0, 1)]
    offset = 1
    while offset < length:
        slices.append(slice(offset, offset * 2))
        offset *= 2
    return slices


def haar_lower_bound(
    query_coefficients: np.ndarray,
    candidate_coefficients: np.ndarray,
) -> np.ndarray:
    """Lower bound on ED from coefficient prefixes (orthonormality)."""
    query_coefficients = np.asarray(query_coefficients, dtype=np.float64).ravel()
    candidate_coefficients = np.atleast_2d(
        np.asarray(candidate_coefficients, dtype=np.float64)
    )
    k = candidate_coefficients.shape[1]
    gaps = candidate_coefficients - query_coefficients[None, :k]
    return np.sqrt(np.sum(gaps * gaps, axis=1))
