"""Discrete Fourier Transform summarization.

One of the mainstream summarizations the paper notes Coconut is
compatible with (Sec. 2): any technique that represents a series as a
multi-dimensional point can be made sortable by bit-interleaving its
quantized dimensions.  Features are the leading Fourier coefficients;
Parseval's theorem makes the truncated coefficient distance a lower
bound on the true Euclidean distance.
"""

from __future__ import annotations

import numpy as np


def dft_features(batch: np.ndarray, n_coefficients: int) -> np.ndarray:
    """Leading DFT features: (N, 2 * n_coefficients) float64.

    Uses the orthonormal transform so Euclidean geometry is preserved.
    Coefficient 0 (the mean) is skipped: it is zero on z-normalized
    series.  Real and imaginary parts are interleaved, each scaled by
    ``sqrt(2)`` to account for the conjugate-symmetric half of the
    spectrum not stored.
    """
    batch = np.asarray(batch, dtype=np.float64)
    if batch.ndim == 1:
        batch = batch[None, :]
    n = batch.shape[1]
    if n_coefficients < 1 or n_coefficients > n // 2 - 1:
        raise ValueError(
            f"n_coefficients must be in [1, {n // 2 - 1}], got {n_coefficients}"
        )
    spectrum = np.fft.rfft(batch, axis=1, norm="ortho")[:, 1 : n_coefficients + 1]
    features = np.empty((batch.shape[0], 2 * n_coefficients))
    features[:, 0::2] = spectrum.real * np.sqrt(2.0)
    features[:, 1::2] = spectrum.imag * np.sqrt(2.0)
    return features


def dft_lower_bound(
    query_features: np.ndarray, candidate_features: np.ndarray
) -> np.ndarray:
    """Lower bound on ED from truncated orthonormal DFT features."""
    query_features = np.asarray(query_features, dtype=np.float64).ravel()
    candidate_features = np.atleast_2d(
        np.asarray(candidate_features, dtype=np.float64)
    )
    gaps = candidate_features - query_features[None, :]
    return np.sqrt(np.sum(gaps * gaps, axis=1))
