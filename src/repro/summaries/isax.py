"""indexable SAX (iSAX): multi-resolution SAX words.

An iSAX word annotates every segment's symbol with the number of bits
used to represent it, so a low-resolution word denotes a *region* of
the summary space.  iSAX-family indexes (iSAX 2.0, ADS, and
Coconut-Trie's node masks) identify every node with such a prefix
region; splitting a node promotes one segment to one more bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sax import SAXConfig, extended_breakpoints


@dataclass(frozen=True)
class ISAXPrefix:
    """A node region: per-segment symbol prefixes at per-segment depths.

    ``symbols[j]`` holds the high ``bits[j]`` bits of segment ``j``'s
    full-cardinality symbol.  ``bits[j] == 0`` means the whole value
    range (symbol must be 0).
    """

    symbols: tuple[int, ...]
    bits: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.symbols) != len(self.bits):
            raise ValueError("symbols and bits must have equal length")
        for symbol, bit in zip(self.symbols, self.bits):
            if bit < 0:
                raise ValueError(f"negative bit count {bit}")
            if symbol >= (1 << bit):
                raise ValueError(
                    f"symbol {symbol} does not fit in {bit} bits"
                )

    @classmethod
    def root(cls, word_length: int) -> "ISAXPrefix":
        """The whole-space region (zero bits everywhere)."""
        return cls((0,) * word_length, (0,) * word_length)

    @classmethod
    def from_full_word(
        cls, word: np.ndarray, config: SAXConfig, bits: tuple[int, ...] | None = None
    ) -> "ISAXPrefix":
        """Truncate a full-cardinality word to the given depths."""
        full = config.bits_per_symbol
        word = np.asarray(word, dtype=np.int64).ravel()
        if bits is None:
            bits = (full,) * config.word_length
        symbols = tuple(
            int(word[j]) >> (full - bits[j]) for j in range(len(word))
        )
        return cls(symbols, tuple(bits))

    def matches(self, word: np.ndarray, config: SAXConfig) -> bool:
        """Does a full-cardinality word fall inside this region?"""
        full = config.bits_per_symbol
        word = np.asarray(word, dtype=np.int64).ravel()
        for j, (symbol, bit) in enumerate(zip(self.symbols, self.bits)):
            if (int(word[j]) >> (full - bit)) != symbol if bit else symbol != 0:
                return False
        return True

    def matches_batch(self, words: np.ndarray, config: SAXConfig) -> np.ndarray:
        """Vectorized :meth:`matches` over (N, w) words."""
        full = config.bits_per_symbol
        words = np.atleast_2d(np.asarray(words, dtype=np.int64))
        ok = np.ones(len(words), dtype=bool)
        for j, (symbol, bit) in enumerate(zip(self.symbols, self.bits)):
            if bit:
                ok &= (words[:, j] >> (full - bit)) == symbol
        return ok

    def split(self, segment: int) -> tuple["ISAXPrefix", "ISAXPrefix"]:
        """Promote ``segment`` by one bit, yielding the two children."""
        symbols = list(self.symbols)
        bits = list(self.bits)
        bits[segment] += 1
        left = symbols.copy()
        right = symbols.copy()
        left[segment] = symbols[segment] << 1
        right[segment] = (symbols[segment] << 1) | 1
        return (
            ISAXPrefix(tuple(left), tuple(bits)),
            ISAXPrefix(tuple(right), tuple(bits)),
        )

    def region_bounds(self, config: SAXConfig) -> tuple[np.ndarray, np.ndarray]:
        """(lower, upper) PAA-value bounds of the region per segment."""
        lower = np.empty(len(self.symbols))
        upper = np.empty(len(self.symbols))
        for j, (symbol, bit) in enumerate(zip(self.symbols, self.bits)):
            if bit == 0:
                lower[j], upper[j] = -np.inf, np.inf
            else:
                ext = extended_breakpoints(1 << bit)
                lower[j] = ext[symbol]
                upper[j] = ext[symbol + 1]
        return lower, upper

    def mindist(self, query_paa: np.ndarray, config: SAXConfig) -> float:
        """Lower bound from a query's PAA to any series in this region."""
        query_paa = np.asarray(query_paa, dtype=np.float64).ravel()
        lower, upper = self.region_bounds(config)
        below = np.where(query_paa < lower, lower - query_paa, 0.0)
        above = np.where(query_paa > upper, query_paa - upper, 0.0)
        gap = below + above
        return float(np.sqrt(config.segment_size * np.sum(gap * gap)))

    def choose_split_segment(
        self, words: np.ndarray, config: SAXConfig
    ) -> int:
        """Pick the segment whose next bit best balances the node.

        The paper (Sec. 2): "the segment whose next unprefixed digit
        divides the resident data series most is selected".  Segments
        already at full depth are excluded.
        """
        full = config.bits_per_symbol
        words = np.atleast_2d(np.asarray(words, dtype=np.int64))
        best_segment = -1
        best_balance = -1.0
        n = len(words)
        for j, bit in enumerate(self.bits):
            if bit >= full:
                continue
            next_bits = (words[:, j] >> (full - bit - 1)) & 1
            ones = int(next_bits.sum())
            balance = min(ones, n - ones) / n if n else 0.0
            if balance > best_balance:
                best_balance = balance
                best_segment = j
        if best_segment < 0:
            raise ValueError("all segments already at full cardinality")
        return best_segment

    @property
    def depth(self) -> int:
        return sum(self.bits)

    def __str__(self) -> str:
        parts = []
        for symbol, bit in zip(self.symbols, self.bits):
            parts.append(format(symbol, f"0{bit}b") if bit else "*")
        return " ".join(parts)
