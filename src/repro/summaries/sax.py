"""Symbolic Aggregate approXimation (SAX).

SAX discretizes PAA values into symbols using breakpoints that divide
the N(0, 1) value space into equiprobable regions (paper Fig. 1): more
regions near zero, fewer at the extremes, so symbols are roughly
uniformly used on z-normalized data.

The full-cardinality SAX word of a series is the per-segment symbol
sequence; :mod:`repro.summaries.isax` adds the multi-resolution view
and :mod:`repro.core.invsax` adds the sortable (z-ordered) view.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy import stats


@lru_cache(maxsize=None)
def breakpoints(cardinality: int) -> np.ndarray:
    """The ``cardinality - 1`` interior breakpoints of N(0, 1).

    Region ``s`` (symbol value ``s``) covers
    ``(breakpoints[s-1], breakpoints[s]]`` with the conventions
    ``breakpoints[-1] = -inf`` and ``breakpoints[c-1] = +inf``.
    """
    if cardinality < 2:
        raise ValueError(f"cardinality must be >= 2, got {cardinality}")
    if cardinality & (cardinality - 1):
        raise ValueError(f"cardinality must be a power of two, got {cardinality}")
    quantiles = np.linspace(0.0, 1.0, cardinality + 1)[1:-1]
    result = stats.norm.ppf(quantiles)
    result.flags.writeable = False
    return result


@lru_cache(maxsize=None)
def extended_breakpoints(cardinality: int) -> np.ndarray:
    """Breakpoints with ``-inf`` / ``+inf`` sentinels (length c + 1)."""
    result = np.concatenate([[-np.inf], breakpoints(cardinality), [np.inf]])
    result.flags.writeable = False
    return result


@dataclass(frozen=True)
class SAXConfig:
    """Shape of the summarization used throughout an index.

    Defaults follow the iSAX literature the paper builds on: 16
    segments at cardinality 256 (8 bits per symbol), series length 256.
    """

    series_length: int = 256
    word_length: int = 16
    cardinality: int = 256

    def __post_init__(self) -> None:
        if self.cardinality & (self.cardinality - 1) or self.cardinality < 2:
            raise ValueError(
                f"cardinality must be a power of two >= 2, got {self.cardinality}"
            )
        if self.word_length <= 0:
            raise ValueError(f"word_length must be positive, got {self.word_length}")
        if self.series_length < self.word_length:
            raise ValueError(
                f"series_length {self.series_length} shorter than "
                f"word_length {self.word_length}"
            )

    @property
    def bits_per_symbol(self) -> int:
        return int(self.cardinality).bit_length() - 1

    @property
    def key_bits(self) -> int:
        """Total bits in a full word (= bits in an invSAX key)."""
        return self.word_length * self.bits_per_symbol

    @property
    def key_bytes(self) -> int:
        return -(-self.key_bits // 8)

    @property
    def key_dtype(self) -> np.dtype:
        return np.dtype(f"S{self.key_bytes}")

    @property
    def segment_size(self) -> float:
        return self.series_length / self.word_length

    @property
    def summary_bytes(self) -> int:
        """Bytes to store one full-cardinality word."""
        return self.word_length * (2 if self.cardinality > 256 else 1)


def sax_from_paa(paa_values: np.ndarray, cardinality: int) -> np.ndarray:
    """Quantize PAA values into SAX symbols (uint16)."""
    paa_values = np.asarray(paa_values, dtype=np.float64)
    return np.searchsorted(
        breakpoints(cardinality), paa_values, side="left"
    ).astype(np.uint16)


def sax_words(batch: np.ndarray, config: SAXConfig) -> np.ndarray:
    """Full-cardinality SAX words for a batch: (N, word_length) uint16."""
    from .paa import paa

    batch = np.asarray(batch, dtype=np.float64)
    if batch.ndim == 1:
        batch = batch[None, :]
    if batch.shape[1] != config.series_length:
        raise ValueError(
            f"expected series of length {config.series_length}, "
            f"got {batch.shape[1]}"
        )
    return sax_from_paa(paa(batch, config.word_length), config.cardinality)


def symbol_bounds(
    words: np.ndarray, cardinality: int
) -> tuple[np.ndarray, np.ndarray]:
    """(lower, upper) region bounds for each symbol in ``words``."""
    ext = extended_breakpoints(cardinality)
    words = np.asarray(words, dtype=np.int64)
    return ext[words], ext[words + 1]


def mindist_paa_to_words(
    query_paa: np.ndarray, words: np.ndarray, config: SAXConfig
) -> np.ndarray:
    """Vectorized lower bound from a query's PAA to many SAX words.

    This is the tighter PAA-to-region mindist used by iSAX
    implementations: per segment, distance from the query's PAA value
    to the candidate symbol's region (zero if inside), scaled by the
    segment size.  Guaranteed ``<=`` the true Euclidean distance.
    """
    query_paa = np.asarray(query_paa, dtype=np.float64).ravel()
    words = np.atleast_2d(words)
    lower, upper = symbol_bounds(words, config.cardinality)
    below = np.where(query_paa[None, :] < lower, lower - query_paa[None, :], 0.0)
    above = np.where(query_paa[None, :] > upper, query_paa[None, :] - upper, 0.0)
    gap = below + above
    return np.sqrt(config.segment_size * np.sum(gap * gap, axis=1))


def mindist_words(
    word_a: np.ndarray, word_b: np.ndarray, config: SAXConfig
) -> float:
    """Symbol-to-symbol mindist (the original SAX MINDIST)."""
    ext = extended_breakpoints(config.cardinality)
    a = np.asarray(word_a, dtype=np.int64).ravel()
    b = np.asarray(word_b, dtype=np.int64).ravel()
    hi = np.maximum(a, b)
    lo = np.minimum(a, b)
    gap = np.where(hi - lo <= 1, 0.0, ext[hi] - ext[np.minimum(lo + 1, len(ext) - 1)])
    return float(np.sqrt(config.segment_size * np.sum(gap * gap)))


_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def word_to_text(word: np.ndarray, cardinality: int) -> str:
    """Render a low-cardinality word as letters, e.g. 'fcfd' (Fig. 1)."""
    if cardinality > len(_ALPHABET):
        raise ValueError(
            f"text rendering supports cardinality <= {len(_ALPHABET)}"
        )
    return "".join(_ALPHABET[int(s)] for s in np.asarray(word).ravel())
