"""Data series summarizations and their lower-bound distances."""

from .dft import dft_features, dft_lower_bound
from .dhwt import (
    haar_lower_bound,
    haar_transform,
    inverse_haar_transform,
    is_power_of_two,
    level_slices,
)
from .eapca import eapca, node_lower_bound, series_lower_bound, validate_boundaries
from .isax import ISAXPrefix
from .paa import paa, paa_lower_bound, reconstruct, segment_boundaries
from .sax import (
    SAXConfig,
    breakpoints,
    extended_breakpoints,
    mindist_paa_to_words,
    mindist_words,
    sax_from_paa,
    sax_words,
    symbol_bounds,
    word_to_text,
)

__all__ = [
    "ISAXPrefix",
    "SAXConfig",
    "breakpoints",
    "dft_features",
    "dft_lower_bound",
    "eapca",
    "extended_breakpoints",
    "haar_lower_bound",
    "haar_transform",
    "inverse_haar_transform",
    "is_power_of_two",
    "level_slices",
    "mindist_paa_to_words",
    "mindist_words",
    "node_lower_bound",
    "paa",
    "paa_lower_bound",
    "reconstruct",
    "sax_from_paa",
    "sax_words",
    "segment_boundaries",
    "series_lower_bound",
    "symbol_bounds",
    "validate_boundaries",
    "word_to_text",
]
