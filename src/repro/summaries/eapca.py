"""Extended Adaptive Piecewise Constant Approximation (EAPCA).

Substrate for the DSTree baseline (Wang et al., PVLDB 2013): each
series is summarized per segment by its mean *and* standard deviation,
over a segmentation that adapts per tree node.  A node's synopsis (the
min/max of means and stds among its resident series, per segment)
yields a lower bound on the distance from any query to anything in the
node's subtree.
"""

from __future__ import annotations

import numpy as np


def validate_boundaries(boundaries: np.ndarray, length: int) -> np.ndarray:
    """Check a segmentation: strictly increasing, spanning [0, length]."""
    boundaries = np.asarray(boundaries, dtype=np.int64)
    if boundaries[0] != 0 or boundaries[-1] != length:
        raise ValueError(f"segmentation must span [0, {length}]: {boundaries}")
    if np.any(np.diff(boundaries) <= 0):
        raise ValueError(f"segment boundaries must increase: {boundaries}")
    return boundaries


def eapca(batch: np.ndarray, boundaries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment (means, stds) under the given segmentation.

    Returns two (N, n_segments) arrays.
    """
    batch = np.asarray(batch, dtype=np.float64)
    if batch.ndim == 1:
        batch = batch[None, :]
    boundaries = validate_boundaries(boundaries, batch.shape[1])
    starts = boundaries[:-1]
    sizes = np.diff(boundaries).astype(np.float64)
    sums = np.add.reduceat(batch, starts, axis=1)
    means = sums / sizes
    square_sums = np.add.reduceat(batch * batch, starts, axis=1)
    variance = np.maximum(square_sums / sizes - means * means, 0.0)
    return means, np.sqrt(variance)


def node_lower_bound(
    query: np.ndarray,
    boundaries: np.ndarray,
    mean_min: np.ndarray,
    mean_max: np.ndarray,
    std_min: np.ndarray,
    std_max: np.ndarray,
) -> float:
    """Lower bound from a raw query to any series inside a node.

    For a segment of length ``l``, and any series y in the node:
    ``sum (x_j - y_j)^2 >= l*(ux - uy)^2 + l*(sx - sy)^2`` where u/s
    are segment mean/std (decompose around segment means and apply the
    triangle inequality to the centered parts).  Since uy and sy lie in
    the node's recorded ranges, distance-to-range bounds the term.
    """
    query = np.asarray(query, dtype=np.float64).ravel()
    q_means, q_stds = eapca(query, boundaries)
    q_means, q_stds = q_means[0], q_stds[0]
    sizes = np.diff(np.asarray(boundaries, dtype=np.int64)).astype(np.float64)
    mean_gap = np.maximum(
        np.maximum(mean_min - q_means, q_means - mean_max), 0.0
    )
    std_gap = np.maximum(np.maximum(std_min - q_stds, q_stds - std_max), 0.0)
    return float(np.sqrt(np.sum(sizes * (mean_gap**2 + std_gap**2))))


def series_lower_bound(
    query: np.ndarray,
    boundaries: np.ndarray,
    means: np.ndarray,
    stds: np.ndarray,
) -> np.ndarray:
    """Vectorized lower bound from a query to many summarized series."""
    query = np.asarray(query, dtype=np.float64).ravel()
    q_means, q_stds = eapca(query, boundaries)
    q_means, q_stds = q_means[0], q_stds[0]
    sizes = np.diff(np.asarray(boundaries, dtype=np.int64)).astype(np.float64)
    means = np.atleast_2d(means)
    stds = np.atleast_2d(stds)
    gap = (means - q_means[None, :]) ** 2 + (stds - q_stds[None, :]) ** 2
    return np.sqrt(np.sum(sizes[None, :] * gap, axis=1))
