"""Coconut: a scalable bottom-up approach for building data series indexes.

A from-scratch Python reproduction of Kondylakis, Dayan, Zoumpatianos
and Palpanas (PVLDB 11(6), 2018), including every substrate and
baseline the paper evaluates against.

Quickstart::

    import numpy as np
    from repro import CoconutTree, RawSeriesFile, SimulatedDisk, random_walk

    disk = SimulatedDisk()
    data = random_walk(10_000, length=256, seed=0)
    raw = RawSeriesFile.create(disk, data)
    index = CoconutTree(disk, memory_bytes=1 << 22)
    index.build(raw)
    result = index.exact_search(random_walk(1, length=256, seed=1)[0])
    print(result.answer_idx, result.distance)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured reproduction results.
"""

from .core import (
    CoconutTree,
    CoconutTrie,
    deinterleave_keys,
    interleave_words,
    invsax_keys,
    query_key,
    sims_scan,
)
from .indexes import (
    ADSIndex,
    BatchReport,
    BuildReport,
    DSTree,
    ISAX2Index,
    QueryBatch,
    QueryResult,
    RTreeIndex,
    SerialScan,
    SeriesIndex,
    VerticalIndex,
)
from .parallel import (
    ParallelSummarizer,
    batched_exact_knn,
    parallel_invsax_keys,
    parallel_merge_runs,
)
from .service import CoconutService, ServiceConfig
from .series import (
    astronomy,
    dtw,
    euclidean,
    make_dataset,
    query_workload,
    random_walk,
    seismic,
    sliding_windows,
    z_normalize,
)
from .storage import (
    BufferPool,
    CostModel,
    DiskShard,
    DiskStats,
    ExternalSorter,
    PagedFile,
    RawSeriesFile,
    ShardedDisk,
    SimulatedDisk,
)
from .summaries import SAXConfig

__version__ = "1.0.0"

__all__ = [
    "ADSIndex",
    "BatchReport",
    "BufferPool",
    "BuildReport",
    "CoconutService",
    "CoconutTree",
    "CoconutTrie",
    "CostModel",
    "DSTree",
    "DiskShard",
    "DiskStats",
    "ExternalSorter",
    "ISAX2Index",
    "PagedFile",
    "ParallelSummarizer",
    "QueryBatch",
    "QueryResult",
    "RTreeIndex",
    "RawSeriesFile",
    "SAXConfig",
    "SerialScan",
    "SeriesIndex",
    "ServiceConfig",
    "ShardedDisk",
    "SimulatedDisk",
    "VerticalIndex",
    "astronomy",
    "batched_exact_knn",
    "deinterleave_keys",
    "dtw",
    "euclidean",
    "interleave_words",
    "invsax_keys",
    "make_dataset",
    "parallel_invsax_keys",
    "parallel_merge_runs",
    "query_key",
    "query_workload",
    "random_walk",
    "seismic",
    "sims_scan",
    "sliding_windows",
    "z_normalize",
    "__version__",
]
