"""Coconut: a scalable bottom-up approach for building data series indexes.

A from-scratch Python reproduction of Kondylakis, Dayan, Zoumpatianos
and Palpanas (PVLDB 11(6), 2018), including every substrate and
baseline the paper evaluates against.

Quickstart::

    import numpy as np
    from repro import CoconutTree, RawSeriesFile, SimulatedDisk, random_walk

    disk = SimulatedDisk()
    data = random_walk(10_000, length=256, seed=0)
    raw = RawSeriesFile.create(disk, data)
    index = CoconutTree(disk, memory_bytes=1 << 22)
    index.build(raw)
    result = index.exact_search(random_walk(1, length=256, seed=1)[0])
    print(result.answer_idx, result.distance)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured reproduction results.
"""

from .core import (
    CoconutTree,
    CoconutTrie,
    deinterleave_keys,
    interleave_words,
    invsax_keys,
    query_key,
    sims_scan,
)
from .indexes import (
    ADSIndex,
    BuildReport,
    DSTree,
    ISAX2Index,
    QueryResult,
    RTreeIndex,
    SerialScan,
    SeriesIndex,
    VerticalIndex,
)
from .series import (
    astronomy,
    dtw,
    euclidean,
    make_dataset,
    query_workload,
    random_walk,
    seismic,
    sliding_windows,
    z_normalize,
)
from .storage import (
    BufferPool,
    CostModel,
    DiskStats,
    ExternalSorter,
    PagedFile,
    RawSeriesFile,
    SimulatedDisk,
)
from .summaries import SAXConfig

__version__ = "1.0.0"

__all__ = [
    "ADSIndex",
    "BufferPool",
    "BuildReport",
    "CoconutTree",
    "CoconutTrie",
    "CostModel",
    "DSTree",
    "DiskStats",
    "ExternalSorter",
    "ISAX2Index",
    "PagedFile",
    "QueryResult",
    "RTreeIndex",
    "RawSeriesFile",
    "SAXConfig",
    "SerialScan",
    "SeriesIndex",
    "SimulatedDisk",
    "VerticalIndex",
    "astronomy",
    "deinterleave_keys",
    "dtw",
    "euclidean",
    "interleave_words",
    "invsax_keys",
    "make_dataset",
    "query_key",
    "query_workload",
    "random_walk",
    "seismic",
    "sims_scan",
    "sliding_windows",
    "z_normalize",
    "__version__",
]
