"""Data series fundamentals: normalization and validation.

The paper (Sec. 2) defines a data series as an ordered set of
recordings and z-normalizes every series (subtract mean, divide by
standard deviation) before indexing, so that Euclidean distance
corresponds to Pearson correlation and similarity is invariant to
translation and scaling.
"""

from __future__ import annotations

import numpy as np

#: Series whose standard deviation falls below this are treated as
#: constant and normalized to all-zeros instead of dividing by ~0.
EPSILON = 1e-8


def z_normalize(series: np.ndarray) -> np.ndarray:
    """Z-normalize one series or a batch of series (last axis).

    Constant series become all-zeros rather than NaN, matching the
    convention of the iSAX code base the paper builds on.
    """
    series = np.asarray(series, dtype=np.float64)
    mean = series.mean(axis=-1, keepdims=True)
    std = series.std(axis=-1, keepdims=True)
    safe = np.where(std < EPSILON, 1.0, std)
    out = (series - mean) / safe
    if series.ndim == 1:
        if std[..., 0] < EPSILON:
            out[:] = 0.0
    else:
        out[(std < EPSILON)[..., 0]] = 0.0
    return out.astype(np.float32)


def is_z_normalized(series: np.ndarray, tolerance: float = 1e-3) -> bool:
    """Check mean ~0 and std ~1 (or the all-zero constant convention)."""
    series = np.asarray(series, dtype=np.float64)
    mean = np.abs(series.mean(axis=-1))
    std = series.std(axis=-1)
    ok = (mean < tolerance) & (
        (np.abs(std - 1.0) < tolerance) | (std < tolerance)
    )
    return bool(np.all(ok))


def validate_series_batch(data: np.ndarray, length: int | None = None) -> np.ndarray:
    """Coerce input to a (N, n) float32 batch, checking shape and values."""
    data = np.asarray(data, dtype=np.float32)
    if data.ndim == 1:
        data = data[None, :]
    if data.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D input, got shape {data.shape}")
    if length is not None and data.shape[1] != length:
        raise ValueError(
            f"expected series of length {length}, got {data.shape[1]}"
        )
    if not np.all(np.isfinite(data)):
        raise ValueError("series contain NaN or infinite values")
    return data
