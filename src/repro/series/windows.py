"""Sliding-window extraction of fixed-length series from long signals.

The paper's real datasets were collected this way: 100M seismic series
of length 256 via a window sliding every 4 samples, and 270M astronomy
series with a step of 1.  Subsequence indexes treat each window as an
independent data series.
"""

from __future__ import annotations

import numpy as np

from .dataseries import z_normalize


def sliding_windows(
    signal: np.ndarray,
    length: int,
    step: int = 1,
    normalize: bool = True,
) -> np.ndarray:
    """Extract z-normalized windows of ``length`` every ``step`` samples.

    Returns a (num_windows, length) float32 array; the stride trick is
    materialized so callers may mutate the result safely.
    """
    signal = np.asarray(signal, dtype=np.float64).ravel()
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    if len(signal) < length:
        raise ValueError(
            f"signal of {len(signal)} samples shorter than window {length}"
        )
    n_windows = (len(signal) - length) // step + 1
    view = np.lib.stride_tricks.sliding_window_view(signal, length)[::step]
    windows = np.array(view[:n_windows], dtype=np.float64)
    if normalize:
        return z_normalize(windows)
    return windows.astype(np.float32)


def window_count(signal_length: int, length: int, step: int = 1) -> int:
    """Number of windows ``sliding_windows`` would produce."""
    if signal_length < length:
        return 0
    return (signal_length - length) // step + 1
