"""Dataset generators reproducing the paper's three data sources.

The paper evaluates on (i) synthetic random walks — "shown to
effectively model real-world financial data", (ii) seismic waveforms
from the IRIS repository, and (iii) astronomy series of celestial
objects.  The real datasets are not redistributable, so this module
provides synthetic stand-ins that reproduce the properties the paper
calls out: the Fig. 7 value histograms (random walk and seismology
near-identical and near-Gaussian, astronomy slightly skewed) and the
"denser, harder to prune" structure of the real data (Sec. 5.3).

All generators return z-normalized float32 batches and are
deterministic given a seed.

Seeding policy (audited for reproducible parallel runs): every
generator draws exclusively from one ``np.random.default_rng(seed)``
stream, so a given ``(name, n_series, length, seed)`` tuple yields the
same bytes on every run, process and worker — benchmarks and the
parallel build/query tests rely on this to compare runs.  Query
workloads derive an independent stream from the same seed (offset by
``0x5EED``) so queries never collide with the indexed data.  Passing
``seed=None`` requests fresh OS entropy and is *not* reproducible; all
benchmark defaults pass explicit seeds.
"""

from __future__ import annotations

import numpy as np

from .dataseries import z_normalize


def random_walk(
    n_series: int, length: int = 256, seed: int | None = None
) -> np.ndarray:
    """Random walk series: cumulative sums of N(0, 1) steps (Sec. 5).

    A starting value is drawn from N(0, 1); each subsequent point adds
    a fresh N(0, 1) draw — the paper's generator verbatim.
    """
    rng = np.random.default_rng(seed)
    steps = rng.standard_normal((n_series, length))
    return z_normalize(np.cumsum(steps, axis=1))


def seismic(
    n_series: int,
    length: int = 256,
    events_per_series: float = 2.0,
    seed: int | None = None,
) -> np.ndarray:
    """Seismology stand-in: noise plus decaying wave-packet arrivals.

    Each series is low-amplitude background noise with a Poisson number
    of "events": exponentially decaying, oscillating wave packets, the
    canonical shape of seismograms.  Many windows share event shapes at
    different phases, which makes the dataset *denser* than random
    walks — queries are harder to prune, as the paper observes for the
    real seismic data.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=np.float64)
    data = 0.1 * rng.standard_normal((n_series, length))
    n_events = rng.poisson(events_per_series, size=n_series)
    for i in range(n_series):
        for _ in range(n_events[i]):
            onset = rng.uniform(0, length * 0.9)
            freq = rng.uniform(0.02, 0.2)
            decay = rng.uniform(0.01, 0.08)
            amp = rng.uniform(0.5, 3.0)
            phase = rng.uniform(0, 2 * np.pi)
            rel = t - onset
            packet = np.where(
                rel >= 0,
                amp * np.exp(-decay * np.clip(rel, 0, None))
                * np.sin(2 * np.pi * freq * rel + phase),
                0.0,
            )
            data[i] += packet
    return z_normalize(data)


def astronomy(
    n_series: int,
    length: int = 256,
    seed: int | None = None,
) -> np.ndarray:
    """Astronomy stand-in: light-curve-like series with skewed values.

    Celestial-object light curves combine smooth periodic variability
    with occasional brightening transients (flares), which gives the
    slightly skewed value histogram of Fig. 7.  Flares are one-sided
    (brightness only goes up), producing the asymmetry.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=np.float64)
    data = np.empty((n_series, length))
    for i in range(n_series):
        period = rng.uniform(length / 8, length / 2)
        amp = rng.uniform(0.3, 1.0)
        phase = rng.uniform(0, 2 * np.pi)
        base = amp * np.sin(2 * np.pi * t / period + phase)
        base += 0.15 * rng.standard_normal(length)
        # One-sided flares: fast rise, exponential decay.
        for _ in range(rng.poisson(1.2)):
            onset = rng.uniform(0, length * 0.95)
            height = rng.exponential(1.2)
            decay = rng.uniform(0.05, 0.3)
            rel = t - onset
            base += np.where(
                rel >= 0, height * np.exp(-decay * np.clip(rel, 0, None)), 0.0
            )
        data[i] = base
    return z_normalize(data)


#: Registry used by benchmarks to sweep the paper's datasets by name.
GENERATORS = {
    "randomwalk": random_walk,
    "seismic": seismic,
    "astronomy": astronomy,
}


def make_dataset(
    name: str, n_series: int, length: int = 256, seed: int | None = None
) -> np.ndarray:
    """Generate one of the paper's datasets by name."""
    try:
        generator = GENERATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(GENERATORS)}"
        ) from None
    return generator(n_series, length=length, seed=seed)


def query_workload(
    name: str,
    n_queries: int,
    length: int = 256,
    seed: int | None = None,
) -> np.ndarray:
    """Random query workload drawn from the same distribution (Sec. 5).

    The paper's workloads are random: fresh series from the same source
    as the indexed data, so queries are not exact matches of anything
    in the index.  The query stream is derived from ``seed`` with a
    fixed offset: deterministic for a given seed, never equal to the
    data stream of the same seed.  ``seed=None`` means fresh entropy
    (it used to silently alias seed 0, making two "unseeded" workloads
    identical).
    """
    offset = None if seed is None else seed + 0x5EED
    return make_dataset(name, n_queries, length=length, seed=offset)
