"""Data series substrate: normalization, distances, generators, windows."""

from .dataseries import EPSILON, is_z_normalized, validate_series_batch, z_normalize
from .distance import (
    dtw,
    early_abandon_euclidean,
    early_abandon_euclidean_block,
    euclidean,
    euclidean_batch,
    lb_keogh,
    squared_euclidean,
)
from .generators import (
    GENERATORS,
    astronomy,
    make_dataset,
    query_workload,
    random_walk,
    seismic,
)
from .windows import sliding_windows, window_count

__all__ = [
    "EPSILON",
    "GENERATORS",
    "astronomy",
    "dtw",
    "early_abandon_euclidean",
    "early_abandon_euclidean_block",
    "euclidean",
    "euclidean_batch",
    "is_z_normalized",
    "lb_keogh",
    "make_dataset",
    "query_workload",
    "random_walk",
    "seismic",
    "sliding_windows",
    "squared_euclidean",
    "validate_series_batch",
    "window_count",
    "z_normalize",
]
