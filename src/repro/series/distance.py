"""Distance functions for data series.

Euclidean distance is the paper's metric (Sec. 2): on z-normalized
series it is equivalent to maximizing Pearson correlation, and its
error rate converges to DTW's as datasets grow.  DTW and the LB_Keogh
lower bound are included as the modification the paper notes can be
applied to make the indexes DTW-compatible.
"""

from __future__ import annotations

import numpy as np


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two equal-length series."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.sqrt(np.sum((a - b) ** 2)))


def squared_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance (avoids the sqrt for comparisons)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return float(np.sum((a - b) ** 2))


def euclidean_batch(query: np.ndarray, batch: np.ndarray) -> np.ndarray:
    """Euclidean distances from one query to every row of a batch."""
    query = np.asarray(query, dtype=np.float64)
    batch = np.asarray(batch, dtype=np.float64)
    return np.sqrt(np.sum((batch - query[None, :]) ** 2, axis=1))


#: Elements summed per partial-sum step of the early-abandoning ED.
EARLY_ABANDON_CHUNK = 32


def early_abandon_euclidean(
    a: np.ndarray, b: np.ndarray, best_so_far: float, chunk: int = 0
) -> float:
    """ED with early abandoning against a best-so-far threshold.

    Returns ``inf`` as soon as the running sum exceeds
    ``best_so_far**2``; the UCR-suite optimization used throughout the
    data series indexing literature.  The sum accumulates in NumPy
    chunks of ``chunk`` elements (default
    :data:`EARLY_ABANDON_CHUNK`) and the threshold is checked between
    chunks: squared differences only ever grow the sum, so abandoning
    at chunk granularity gives the same inf/finite outcome as the
    per-element check while running at vector speed.
    """
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    chunk = chunk if chunk > 0 else EARLY_ABANDON_CHUNK
    limit = best_so_far * best_so_far
    total = 0.0
    for at in range(0, min(len(a), len(b)), chunk):
        diff = a[at : at + chunk] - b[at : at + chunk]
        total += float(np.dot(diff, diff))
        if total > limit:
            return float("inf")
    return float(np.sqrt(total))


def dtw(a: np.ndarray, b: np.ndarray, window: int | None = None) -> float:
    """Dynamic time warping distance with a Sakoe-Chiba band.

    ``window`` is the band half-width; ``None`` means unconstrained.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("DTW requires non-empty series")
    w = max(n, m) if window is None else max(window, abs(n - m))
    prev = np.full(m + 1, np.inf)
    prev[0] = 0.0
    for i in range(1, n + 1):
        cur = np.full(m + 1, np.inf)
        lo = max(1, i - w)
        hi = min(m, i + w)
        for j in range(lo, hi + 1):
            cost = (a[i - 1] - b[j - 1]) ** 2
            cur[j] = cost + min(prev[j], cur[j - 1], prev[j - 1])
        prev = cur
    return float(np.sqrt(prev[m]))


def lb_keogh(query: np.ndarray, candidate: np.ndarray, window: int) -> float:
    """LB_Keogh lower bound for DTW under a Sakoe-Chiba band."""
    query = np.asarray(query, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if query.shape != candidate.shape:
        raise ValueError(f"shape mismatch: {query.shape} vs {candidate.shape}")
    n = len(query)
    upper = np.empty(n)
    lower = np.empty(n)
    for i in range(n):
        lo = max(0, i - window)
        hi = min(n, i + window + 1)
        upper[i] = query[lo:hi].max()
        lower[i] = query[lo:hi].min()
    above = np.where(candidate > upper, candidate - upper, 0.0)
    below = np.where(candidate < lower, lower - candidate, 0.0)
    return float(np.sqrt(np.sum(above**2 + below**2)))
