"""Distance functions for data series.

Euclidean distance is the paper's metric (Sec. 2): on z-normalized
series it is equivalent to maximizing Pearson correlation, and its
error rate converges to DTW's as datasets grow.  DTW and the LB_Keogh
lower bound are included as the modification the paper notes can be
applied to make the indexes DTW-compatible.
"""

from __future__ import annotations

import numpy as np


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two equal-length series."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.sqrt(np.sum((a - b) ** 2)))


def squared_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance (avoids the sqrt for comparisons)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return float(np.sum((a - b) ** 2))


def euclidean_batch(query: np.ndarray, batch: np.ndarray) -> np.ndarray:
    """Euclidean distances from one query to every row of a batch."""
    query = np.asarray(query, dtype=np.float64)
    batch = np.asarray(batch, dtype=np.float64)
    return np.sqrt(np.sum((batch - query[None, :]) ** 2, axis=1))


#: Elements summed per partial-sum step of the early-abandoning ED.
EARLY_ABANDON_CHUNK = 32


def early_abandon_euclidean(
    a: np.ndarray, b: np.ndarray, best_so_far: float, chunk: int = 0
) -> float:
    """ED with early abandoning against a best-so-far threshold.

    The UCR-suite optimization used throughout the data series
    indexing literature: partial sums of squared differences
    accumulate in chunks of ``chunk`` elements (default
    :data:`EARLY_ABANDON_CHUNK`) and the candidate is abandoned —
    ``inf`` returned — as soon as a *proper prefix* of the series
    already exceeds ``best_so_far``.  Squared differences only ever
    grow the sum, so an abandoned candidate provably has full distance
    strictly above the threshold.

    Survivors are returned as :func:`euclidean` of the full series —
    the exact same reduction every non-abandoning path uses — so
    every finite result is **bitwise identical** to the plain
    distance, independent of ``chunk``.  The threshold is never
    checked after the final chunk: a candidate whose full distance
    ties ``best_so_far`` exactly comes back finite, not ``inf``,
    keeping tie-handling identical to the non-abandoning code path.

    Raises ``ValueError`` on mismatched shapes (it used to silently
    truncate to the shorter input, producing a wrong finite distance).
    """
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    chunk = chunk if chunk > 0 else EARLY_ABANDON_CHUNK
    total = 0.0
    for at in range(0, len(a) - chunk, chunk):
        diff = a[at : at + chunk] - b[at : at + chunk]
        total += float(np.sum(diff * diff))
        if np.sqrt(total) > best_so_far:
            return float("inf")
    return euclidean(a, b)


def early_abandon_euclidean_block(
    query: np.ndarray,
    block: np.ndarray,
    best_so_far: float,
    chunk: int = 0,
) -> np.ndarray:
    """Batched early-abandoning ED: one query against a whole block.

    The vectorized form of :func:`early_abandon_euclidean`, applied to
    every row of ``block`` at once: partial sums accumulate chunk by
    chunk over the still-active rows, rows whose proper-prefix sum
    already exceeds ``best_so_far`` drop out with ``inf``, and the
    survivors' distances are recomputed with the exact
    :func:`euclidean_batch` reduction.  Both the abandon decisions and
    every finite distance are **bitwise identical** to running the
    scalar kernel row by row — and every finite distance is bitwise
    identical to :func:`euclidean_batch` — so swapping this kernel
    into a refine loop cannot change answers, tie order, or any
    downstream comparison, only the amount of arithmetic performed.

    A non-finite (or NaN) ``best_so_far`` can never abandon anything,
    so the kernel short-circuits to :func:`euclidean_batch`; likewise
    when the series fit in a single chunk (no proper-prefix boundary
    exists to check).

    Raises ``ValueError`` when ``block`` is not 2-D with rows the
    length of ``query``.
    """
    query = np.asarray(query, dtype=np.float64).ravel()
    block = np.asarray(block, dtype=np.float64)
    if block.ndim != 2 or block.shape[1] != query.shape[0]:
        raise ValueError(f"shape mismatch: {block.shape} vs {query.shape}")
    n, length = block.shape
    if n == 0:
        return np.empty(0, dtype=np.float64)
    chunk = chunk if chunk > 0 else EARLY_ABANDON_CHUNK
    bound = float(best_so_far)
    if np.isnan(bound) or bound == np.inf or length <= chunk:
        return euclidean_batch(query, block)
    out = np.full(n, np.inf)
    totals = np.zeros(n)
    active = np.arange(n)
    for at in range(0, length - chunk, chunk):
        sub = block[active, at : at + chunk] - query[at : at + chunk]
        totals[active] += np.sum(sub * sub, axis=1)
        # ``~(x > bound)`` rather than ``x <= bound``: NaN prefixes
        # must stay active (and come back NaN), exactly as the scalar
        # kernel's ``if sqrt > bound`` keeps them.
        active = active[~(np.sqrt(totals[active]) > bound)]
        if len(active) == 0:
            return out
    out[active] = np.sqrt(
        np.sum((block[active] - query[None, :]) ** 2, axis=1)
    )
    return out


def dtw(a: np.ndarray, b: np.ndarray, window: int | None = None) -> float:
    """Dynamic time warping distance with a Sakoe-Chiba band.

    ``window`` is the band half-width; ``None`` means unconstrained.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("DTW requires non-empty series")
    w = max(n, m) if window is None else max(window, abs(n - m))
    prev = np.full(m + 1, np.inf)
    prev[0] = 0.0
    for i in range(1, n + 1):
        cur = np.full(m + 1, np.inf)
        lo = max(1, i - w)
        hi = min(m, i + w)
        for j in range(lo, hi + 1):
            cost = (a[i - 1] - b[j - 1]) ** 2
            cur[j] = cost + min(prev[j], cur[j - 1], prev[j - 1])
        prev = cur
    return float(np.sqrt(prev[m]))


def lb_keogh(query: np.ndarray, candidate: np.ndarray, window: int) -> float:
    """LB_Keogh lower bound for DTW under a Sakoe-Chiba band."""
    query = np.asarray(query, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if query.shape != candidate.shape:
        raise ValueError(f"shape mismatch: {query.shape} vs {candidate.shape}")
    n = len(query)
    upper = np.empty(n)
    lower = np.empty(n)
    for i in range(n):
        lo = max(0, i - window)
        hi = min(n, i + window + 1)
        upper[i] = query[lo:hi].max()
        lower[i] = query[lo:hi].min()
    above = np.where(candidate > upper, candidate - upper, 0.0)
    below = np.where(candidate < lower, lower - candidate, 0.0)
    return float(np.sqrt(np.sum(above**2 + below**2)))
