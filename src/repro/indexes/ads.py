"""ADS: the Adaptive Data Series index (ADSFull and ADS+).

The paper's main competitor (Zoumpatianos et al., VLDB J. 2016).

* **ADSFull** builds an iSAX-style *clustered* index in two passes:
  pass 1 inserts (summary, offset) pairs into the buffered prefix tree
  (cheap — summaries are tiny); pass 2 streams the raw file again and
  routes every series into its leaf, materializing the leaves.  With
  scarce memory, pass-2 leaf flushes become random read-modify-writes.

* **ADS+** stops after pass 1: a minimal secondary index whose leaves
  hold only offsets.  Leaves are *adaptively* refined during query
  answering: the first query that visits a leaf splits it down to a
  fine query-time leaf size and materializes the raw series into it,
  paying the I/O that construction skipped.

Exact search is SIMS (Zoumpatianos et al.): the in-memory summary
array — aligned with the raw file order — is scanned with vectorized
lower bounds, and surviving records are fetched skip-sequentially from
the raw file.  Coconut's CoconutTreeSIMS (Algorithm 5) differs by
scanning summaries in *index* order; both share the engine in
:mod:`repro.core.sims`.
"""

from __future__ import annotations

import numpy as np

from ..core.sims import sims_scan
from ..series.distance import early_abandon_euclidean_block
from ..storage.disk import SimulatedDisk
from ..storage.seriesfile import RawSeriesFile
from ..summaries.sax import SAXConfig, sax_words
from .base import BuildReport, Measurement, QueryResult, SeriesIndex
from .isax2 import ISAXTree, _Leaf


class ADSIndex(SeriesIndex):
    """ADSFull (``plus=False``) or ADS+ (``plus=True``)."""

    def __init__(
        self,
        disk: SimulatedDisk,
        memory_bytes: int,
        config: SAXConfig | None = None,
        leaf_size: int = 100,
        plus: bool = True,
        query_leaf_size: int | None = None,
    ):
        super().__init__(disk, memory_bytes)
        self.config = config or SAXConfig()
        self.leaf_size = leaf_size
        self.plus = plus
        self.is_materialized = not plus
        self.query_leaf_size = query_leaf_size or max(1, leaf_size // 10)
        self.name = "ADS+" if plus else "ADSFull"
        self.tree: ISAXTree | None = None
        self._words: np.ndarray | None = None  # raw-file order, in memory
        self.adaptive_splits = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, raw: RawSeriesFile) -> BuildReport:
        self.raw = raw
        with Measurement(self.disk) as measure:
            self.tree = ISAXTree(
                self.disk,
                self.config,
                raw.length,
                self.leaf_size,
                self.memory_bytes,
                materialized=not self.plus,
            )
            words_parts = []
            if self.plus:
                # Single pass: build the minimal secondary index.
                for start, block in raw.scan():
                    words = sax_words(block, self.config)
                    words_parts.append(words)
                    for i in range(len(block)):
                        self.tree.insert(words[i], start + i, None)
                self.tree.flush_all()
            else:
                # Pass 1 over summaries only (cheap structure building).
                skeleton = ISAXTree(
                    self.disk,
                    self.config,
                    raw.length,
                    self.leaf_size,
                    self.memory_bytes,
                    materialized=False,
                )
                for start, block in raw.scan():
                    words = sax_words(block, self.config)
                    words_parts.append(words)
                    for i in range(len(block)):
                        skeleton.insert(words[i], start + i, None)
                skeleton.flush_all()
                # Pass 2 over the raw file: materialize the leaves.
                for start, block in raw.scan():
                    words = sax_words(block, self.config)
                    for i in range(len(block)):
                        self.tree.insert(words[i], start + i, block[i])
                self.tree.flush_all()
            self._words = (
                np.concatenate(words_parts)
                if words_parts
                else np.empty((0, self.config.word_length), dtype=np.uint16)
            )
        self.built = True
        n_leaves, fill = self.leaf_stats()
        return BuildReport(
            index_name=self.name,
            n_series=raw.n_series,
            wall_s=measure.wall_s,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            index_bytes=self.storage_bytes(),
            n_leaves=n_leaves,
            avg_leaf_fill=fill,
            extra={"splits": self.tree.n_splits},
        )

    def insert_batch(self, data: np.ndarray) -> BuildReport:
        raw = self._require_built()
        data = np.asarray(data, dtype=np.float32)
        with Measurement(self.disk) as measure:
            first = raw.append_batch(data)
            words = sax_words(data, self.config)
            for i in range(len(data)):
                self.tree.insert(
                    words[i], first + i, None if self.plus else data[i]
                )
            self._words = np.vstack([self._words, words])
        n_leaves, fill = self.leaf_stats()
        return BuildReport(
            index_name=self.name,
            n_series=len(data),
            wall_s=measure.wall_s,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            index_bytes=self.storage_bytes(),
            n_leaves=n_leaves,
            avg_leaf_fill=fill,
        )

    # ------------------------------------------------------------------
    # Adaptive refinement (ADS+)
    # ------------------------------------------------------------------
    def _materialize_leaf(self, leaf: _Leaf, query_word: np.ndarray) -> _Leaf:
        """Split a visited leaf down to query granularity and fill it.

        The raw series of the (sub-)leaf are fetched from the raw file
        and written into the leaf pages — the deferred construction
        cost ADS+ pays at query time.
        """
        target = self.tree
        # Refine until the leaf holding the query region is small.
        while leaf.count > self.query_leaf_size:
            records = target._leaf_records_in_memory(leaf)
            before = target.n_splits
            target._split_leaf(leaf, records)
            if target.n_splits == before:
                break  # unsplittable (identical words)
            self.adaptive_splits += 1
            routed = target.route(query_word)
            if routed.count == 0:
                # The prefix split pushed everything to the sibling
                # region; answer from the populated one instead.
                leaf = target.route(records["w"][0])
                break
            leaf = routed
        if not leaf.materialized and leaf.count:
            records = target._leaf_records_in_memory(leaf)
            series = self.raw.get_many(records["off"])
            # Rewrite the leaf with raw series appended conceptually:
            # we charge the write of the series pages alongside.
            extra_pages = -(
                -len(records) * 4 * self.raw.length // self.disk.page_size
            )
            first = self.disk.allocate(max(1, extra_pages))
            blob = series.astype(np.float32).tobytes()
            for i in range(max(1, extra_pages)):
                chunk = blob[
                    i * self.disk.page_size : (i + 1) * self.disk.page_size
                ]
                self.disk.write_page(first + i, chunk)
            leaf.materialized = True
        return leaf

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def approximate_search(self, query: np.ndarray) -> QueryResult:
        query = self._query_array(query)
        with Measurement(self.disk) as measure:
            word = sax_words(query[None, :], self.config)[0]
            leaf = self.tree.route(word, create=False)
            best_idx, best_dist, visited = -1, float("inf"), 0
            if leaf is not None and leaf.count:
                if self.plus:
                    leaf = self._materialize_leaf(leaf, word)
                records = self.tree._leaf_records_in_memory(leaf)
                if self.plus or not self.is_materialized:
                    series = self.raw.get_many(records["off"])
                else:
                    series = records["series"].astype(np.float64)
                distances = early_abandon_euclidean_block(
                    query, series, float("inf")
                )
                visited = len(records)
                j = int(np.argmin(distances))
                best_idx, best_dist = int(records["off"][j]), float(distances[j])
        return QueryResult(
            answer_idx=best_idx,
            distance=best_dist,
            visited_records=visited,
            visited_leaves=1 if visited else 0,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
        )

    def exact_search(self, query: np.ndarray) -> QueryResult:
        """SIMS: summaries in raw-file order + skip-sequential scan."""
        query = self._query_array(query)
        with Measurement(self.disk) as measure:
            seed = self.approximate_search(query)

            def fetch(positions: np.ndarray):
                return self.raw.get_many(positions), positions

            outcome = sims_scan(
                query,
                self._words,
                self.config,
                fetch,
                initial_bsf=seed.distance,
                initial_answer=seed.answer_idx,
            )
        return QueryResult(
            answer_idx=outcome.answer_id,
            distance=outcome.distance,
            visited_records=outcome.visited_records + seed.visited_records,
            visited_leaves=seed.visited_leaves,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
            pruned_fraction=outcome.pruned_fraction,
        )

    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        return self.tree.storage_bytes() if self.tree else 0

    def leaf_stats(self) -> tuple[int, float]:
        return self.tree.leaf_stats() if self.tree else (0, 0.0)
