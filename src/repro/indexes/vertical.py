"""Vertical: stepwise kNN over column-stored wavelet coefficients.

The Kashyap & Karras (KDD 2011) baseline: the orthonormal Haar
transform of every series is stored *vertically* — one file per
resolution level, each holding that level's coefficients for all N
series.  The index is built "in a stepwise sequential-scan manner, one
level of resolution at a time" (paper Sec. 5), i.e. one pass over the
data per level, which the evaluation shows is slower to build than
Coconut's single sort.

Queries scan levels coarse-to-fine: after each level the partial
coefficient distance is a lower bound on the true ED, so candidates
whose bound exceeds the best-so-far are dropped; because the transform
is orthonormal, surviving to the final level yields the *exact*
distance — no raw-file access needed (the index is materialized: the
full coefficient set is an invertible copy of the data).
"""

from __future__ import annotations

import numpy as np

from ..storage.disk import SimulatedDisk
from ..storage.pager import PagedFile
from ..storage.seriesfile import RawSeriesFile
from ..summaries.dhwt import haar_transform, level_slices
from .base import BuildReport, Measurement, QueryResult, SeriesIndex


class VerticalIndex(SeriesIndex):
    """Level-files over Haar coefficients with stepwise refinement."""

    name = "Vertical"
    is_materialized = True

    def __init__(
        self,
        disk: SimulatedDisk,
        memory_bytes: int,
        seed_level: int = 4,
    ):
        super().__init__(disk, memory_bytes)
        if seed_level < 1:
            raise ValueError(f"seed_level must be >= 1, got {seed_level}")
        self.seed_level = seed_level
        self._level_files: list[PagedFile] = []
        self._level_slices: list[slice] = []
        self._level_row_bytes: list[int] = []

    # ------------------------------------------------------------------
    def build(self, raw: RawSeriesFile) -> BuildReport:
        self.raw = raw
        self._level_slices = level_slices(raw.length)
        with Measurement(self.disk) as measure:
            for level, columns in enumerate(self._level_slices):
                # One sequential pass over the raw data per level.
                parts = []
                for _, block in raw.scan():
                    coefficients = haar_transform(block)
                    parts.append(
                        coefficients[:, columns].astype(np.float32)
                    )
                level_data = (
                    np.concatenate(parts)
                    if parts
                    else np.empty((0, columns.stop - columns.start), np.float32)
                )
                file = PagedFile(self.disk, name=f"vertical-L{level}")
                file.write_stream(level_data.tobytes())
                self._level_files.append(file)
                self._level_row_bytes.append(level_data.shape[1] * 4)
        self.built = True
        return BuildReport(
            index_name=self.name,
            n_series=raw.n_series,
            wall_s=measure.wall_s,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            index_bytes=self.storage_bytes(),
            n_leaves=len(self._level_files),
            avg_leaf_fill=1.0,
            extra={"levels": len(self._level_slices)},
        )

    # ------------------------------------------------------------------
    def _read_level_rows(self, level: int, positions: np.ndarray) -> np.ndarray:
        """Read coefficient rows of one level, forward-only on disk."""
        row_bytes = self._level_row_bytes[level]
        n_columns = row_bytes // 4
        file = self._level_files[level]
        page_size = self.disk.page_size
        out = np.empty((len(positions), n_columns), dtype=np.float32)
        last_page = -1
        cache: dict[int, bytes] = {}
        for i, position in enumerate(positions):
            start_byte = int(position) * row_bytes
            end_byte = start_byte + row_bytes
            parts = []
            for page in range(start_byte // page_size, -(-end_byte // page_size)):
                if page != last_page or page not in cache:
                    cache = {page: file.read(page)}
                    last_page = page
                parts.append(cache[page])
            # Pages read full-size and zero-padded; a row inside one
            # page parses straight from the device's view, no join.
            blob = parts[0] if len(parts) == 1 else b"".join(parts)
            offset = start_byte - (start_byte // page_size) * page_size
            out[i] = np.frombuffer(blob[offset : offset + row_bytes], np.float32)
        return out

    def _full_row(self, position: int) -> np.ndarray:
        """All coefficients of one series (one row per level file)."""
        parts = [
            self._read_level_rows(level, np.array([position]))[0]
            for level in range(len(self._level_files))
        ]
        return np.concatenate(parts)

    def _query_coefficients(self, query: np.ndarray) -> np.ndarray:
        return haar_transform(query[None, :])[0]

    def approximate_search(self, query: np.ndarray) -> QueryResult:
        """Scan the first ``seed_level`` levels, refine the best candidate."""
        query = self._query_array(query)
        with Measurement(self.disk) as measure:
            q_coefficients = self._query_coefficients(query)
            n = self.raw.n_series
            partial = np.zeros(n)
            positions = np.arange(n)
            for level in range(min(self.seed_level, len(self._level_files))):
                rows = self._read_level_rows(level, positions)
                columns = self._level_slices[level]
                gap = rows.astype(np.float64) - q_coefficients[columns][None, :]
                partial += np.sum(gap * gap, axis=1)
            best = int(np.argmin(partial)) if n else -1
            distance = float("inf")
            if best >= 0:
                full = self._full_row(best).astype(np.float64)
                distance = float(np.linalg.norm(full - q_coefficients))
        return QueryResult(
            answer_idx=best,
            distance=distance,
            visited_records=1 if best >= 0 else 0,
            visited_leaves=min(self.seed_level, len(self._level_files)),
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
        )

    def exact_search(self, query: np.ndarray) -> QueryResult:
        query = self._query_array(query)
        with Measurement(self.disk) as measure:
            q_coefficients = self._query_coefficients(query)
            n = self.raw.n_series
            survivors = np.arange(n)
            partial = np.zeros(n)
            bsf, answer = float("inf"), -1
            for level in range(len(self._level_files)):
                if len(survivors) == 0:
                    break
                rows = self._read_level_rows(level, survivors)
                columns = self._level_slices[level]
                gap = rows.astype(np.float64) - q_coefficients[columns][None, :]
                partial[survivors] += np.sum(gap * gap, axis=1)
                if level == min(self.seed_level, len(self._level_files)) - 1:
                    # Seed the best-so-far with one fully refined candidate.
                    best = survivors[int(np.argmin(partial[survivors]))]
                    full = self._full_row(int(best)).astype(np.float64)
                    bsf = float(np.linalg.norm(full - q_coefficients))
                    answer = int(best)
                if np.isfinite(bsf):
                    keep = np.sqrt(partial[survivors]) < bsf
                    survivors = survivors[keep]
            # Survivors carry their exact distances (orthonormality).
            if len(survivors):
                distances = np.sqrt(partial[survivors])
                j = int(np.argmin(distances))
                if distances[j] < bsf:
                    bsf, answer = float(distances[j]), int(survivors[j])
            visited = int(len(survivors))
        return QueryResult(
            answer_idx=answer,
            distance=bsf,
            visited_records=visited + 1,
            visited_leaves=len(self._level_files),
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
            pruned_fraction=1.0 - visited / n if n else 0.0,
        )

    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        return sum(file.size_bytes for file in self._level_files)

    def leaf_stats(self) -> tuple[int, float]:
        return len(self._level_files), 1.0
