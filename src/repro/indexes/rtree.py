"""R-tree over PAA points, bulk-loaded with Sort-Tile-Recursive (STR).

The spatial baseline of the evaluation: each series becomes a
``word_length``-dimensional PAA point, packed into leaves by STR
(Leutenegger et al., ICDE 1997).  STR sorts the points on one
dimension, slices the result into slabs, and recurses on the next
dimension inside each slab — so the data is externally sorted once per
recursion level.  That is the O(N * D) construction cost the paper
contrasts with Coconut's single O(N) sort over the interleaved key.

* ``materialized=True`` — "R-tree": leaves store the raw series.
* ``materialized=False`` — "R-tree+": leaves store offsets only.

Exact search is classic best-first nearest neighbor over MBR mindists
(lower bounds on ED via the PAA bounding lemma).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..series.distance import early_abandon_euclidean_block
from ..storage.disk import SimulatedDisk
from ..storage.external_sort import ExternalSorter, sort_to_arrays
from ..storage.pager import PagedFile
from ..storage.seriesfile import RawSeriesFile
from ..summaries.paa import paa
from .base import BuildReport, Measurement, QueryResult, SeriesIndex


@dataclass
class _RLeaf:
    low: np.ndarray
    high: np.ndarray
    count: int
    start_page: int
    n_pages: int


@dataclass
class _RNode:
    low: np.ndarray
    high: np.ndarray
    children: list = field(default_factory=list)


def _mbr_mindist(query_paa: np.ndarray, low, high, segment_size: float) -> float:
    """Lower bound on ED from a query to anything inside an MBR."""
    below = np.where(query_paa < low, low - query_paa, 0.0)
    above = np.where(query_paa > high, query_paa - high, 0.0)
    gap = below + above
    return float(np.sqrt(segment_size * np.sum(gap * gap)))


class RTreeIndex(SeriesIndex):
    """STR-packed R-tree on PAA summarizations."""

    def __init__(
        self,
        disk: SimulatedDisk,
        memory_bytes: int,
        n_dimensions: int = 16,
        leaf_size: int = 100,
        materialized: bool = True,
        fanout: int = 16,
    ):
        super().__init__(disk, memory_bytes)
        self.n_dimensions = n_dimensions
        self.leaf_size = leaf_size
        self.is_materialized = materialized
        self.fanout = max(2, fanout)
        self.name = "R-tree" if materialized else "R-tree+"
        self._leaves: list[_RLeaf] = []
        self.root: _RNode | None = None
        self.sort_passes = 0

    # ------------------------------------------------------------------
    @property
    def record_dtype(self) -> np.dtype:
        fields = [
            ("p", "<f8", (self.n_dimensions,)),
            ("off", "<i8"),
        ]
        if self.is_materialized:
            fields.append(("series", "<f4", (self.raw.length,)))
        return np.dtype(fields)

    @property
    def segment_size(self) -> float:
        return self.raw.length / self.n_dimensions

    def build(self, raw: RawSeriesFile) -> BuildReport:
        self.raw = raw
        with Measurement(self.disk) as measure:
            records = self._collect_points(raw)
            self._leaf_file = PagedFile(self.disk, name=f"{self.name}-leaves")
            self._str_pack(records, 0)
            self._build_internal()
        self.built = True
        n_leaves, fill = self.leaf_stats()
        return BuildReport(
            index_name=self.name,
            n_series=raw.n_series,
            wall_s=measure.wall_s,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            index_bytes=self.storage_bytes(),
            n_leaves=n_leaves,
            avg_leaf_fill=fill,
            extra={"sort_passes": self.sort_passes},
        )

    def _collect_points(self, raw: RawSeriesFile) -> np.ndarray:
        parts = []
        for start, block in raw.scan():
            rows = np.zeros(len(block), dtype=self.record_dtype)
            rows["p"] = paa(block, self.n_dimensions)
            rows["off"] = np.arange(start, start + len(block))
            if self.is_materialized:
                rows["series"] = block
            parts.append(rows)
        if not parts:
            return np.empty(0, dtype=self.record_dtype)
        return np.concatenate(parts)

    def _str_pack(self, records: np.ndarray, dim: int) -> None:
        """Sort-tile-recursive packing; one external sort per level."""
        n = len(records)
        if n == 0:
            return
        if n <= self.leaf_size or dim >= self.n_dimensions - 1:
            sorter = ExternalSorter(self.disk, self.memory_bytes)
            self.sort_passes += 1
            keys = np.ascontiguousarray(records["p"][:, dim])
            _, records = sort_to_arrays(sorter, keys, records)
            for start in range(0, n, self.leaf_size):
                self._emit_leaf(records[start : start + self.leaf_size])
            return
        sorter = ExternalSorter(self.disk, self.memory_bytes)
        self.sort_passes += 1
        keys = np.ascontiguousarray(records["p"][:, dim])
        _, records = sort_to_arrays(sorter, keys, records)
        n_leaf_pages = -(-n // self.leaf_size)
        n_slabs = max(1, int(np.ceil(n_leaf_pages ** (1.0 / (self.n_dimensions - dim)))))
        slab = -(-n // n_slabs)
        for start in range(0, n, slab):
            self._str_pack(records[start : start + slab], dim + 1)

    def _emit_leaf(self, records: np.ndarray) -> None:
        start_page = self._leaf_file.n_pages
        n_pages = self._leaf_file.write_stream(
            records.tobytes(), at_page=start_page
        )
        self._leaves.append(
            _RLeaf(
                low=records["p"].min(axis=0),
                high=records["p"].max(axis=0),
                count=len(records),
                start_page=start_page,
                n_pages=n_pages,
            )
        )

    def _build_internal(self) -> None:
        if not self._leaves:
            self.root = None
            return
        level: list = list(self._leaves)
        while len(level) > self.fanout:
            parents = []
            for start in range(0, len(level), self.fanout):
                group = level[start : start + self.fanout]
                low = np.min([g.low for g in group], axis=0)
                high = np.max([g.high for g in group], axis=0)
                parents.append(_RNode(low=low, high=high, children=group))
            level = parents
        self.root = _RNode(
            low=np.min([g.low for g in level], axis=0),
            high=np.max([g.high for g in level], axis=0),
            children=level,
        )

    # ------------------------------------------------------------------
    def _read_leaf(self, leaf: _RLeaf) -> np.ndarray:
        data = self._leaf_file.read_stream(leaf.start_page, leaf.n_pages)
        return np.frombuffer(
            data[: leaf.count * self.record_dtype.itemsize],
            dtype=self.record_dtype,
        )

    def _leaf_distances(
        self, query, leaf, best_so_far: float = float("inf")
    ) -> tuple[np.ndarray, np.ndarray]:
        records = self._read_leaf(leaf)
        if self.is_materialized:
            series = records["series"].astype(np.float64)
        else:
            series = self.raw.get_many(records["off"])
        # With the default inf bound the kernel short-circuits to the
        # plain batch distance; the branch-and-bound search passes its
        # evolving bsf so within-leaf refine abandons rows it already
        # knows cannot win (inf rows lose the argmin update anyway).
        distances = early_abandon_euclidean_block(query, series, best_so_far)
        return distances, records["off"].astype(np.int64)

    def approximate_search(self, query: np.ndarray) -> QueryResult:
        """Greedy descent to the closest leaf MBR."""
        query = self._query_array(query)
        with Measurement(self.disk) as measure:
            best_idx, best_dist, visited = -1, float("inf"), 0
            if self.root is not None:
                query_paa = paa(query, self.n_dimensions)[0]
                node = self.root
                while isinstance(node, _RNode):
                    node = min(
                        node.children,
                        key=lambda c: _mbr_mindist(
                            query_paa, c.low, c.high, self.segment_size
                        ),
                    )
                distances, offsets = self._leaf_distances(query, node)
                visited = len(offsets)
                j = int(np.argmin(distances))
                best_idx, best_dist = int(offsets[j]), float(distances[j])
        return QueryResult(
            answer_idx=best_idx,
            distance=best_dist,
            visited_records=visited,
            visited_leaves=1 if visited else 0,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
        )

    def exact_search(self, query: np.ndarray) -> QueryResult:
        query = self._query_array(query)
        with Measurement(self.disk) as measure:
            seed = self.approximate_search(query)
            bsf, answer = seed.distance, seed.answer_idx
            visited, leaves_read = seed.visited_records, seed.visited_leaves
            if self.root is not None:
                query_paa = paa(query, self.n_dimensions)[0]
                counter = 0
                heap = [
                    (
                        _mbr_mindist(
                            query_paa, self.root.low, self.root.high,
                            self.segment_size,
                        ),
                        counter,
                        self.root,
                    )
                ]
                while heap:
                    bound, _, node = heapq.heappop(heap)
                    if bound >= bsf:
                        break
                    if isinstance(node, _RNode):
                        for child in node.children:
                            counter += 1
                            heapq.heappush(
                                heap,
                                (
                                    _mbr_mindist(
                                        query_paa, child.low, child.high,
                                        self.segment_size,
                                    ),
                                    counter,
                                    child,
                                ),
                            )
                        continue
                    distances, offsets = self._leaf_distances(
                        query, node, best_so_far=bsf
                    )
                    visited += len(offsets)
                    leaves_read += 1
                    j = int(np.argmin(distances))
                    if distances[j] < bsf:
                        bsf, answer = float(distances[j]), int(offsets[j])
        n = self.raw.n_series
        return QueryResult(
            answer_idx=answer,
            distance=bsf,
            visited_records=visited,
            visited_leaves=leaves_read,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
            pruned_fraction=1.0 - visited / n if n else 0.0,
        )

    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        return self._leaf_file.size_bytes if self._leaves else 0

    def leaf_stats(self) -> tuple[int, float]:
        if not self._leaves:
            return 0, 0.0
        fills = [leaf.count / self.leaf_size for leaf in self._leaves]
        return len(self._leaves), float(np.mean(fills))
