"""Serial scan: the brute-force baseline and ground-truth oracle.

No index at all — every query streams the entire raw file and computes
true distances.  This is the "sequential pass over the complete
dataset" the paper's introduction motivates indexing against, and the
reference answer every other index is tested for correctness against.
"""

from __future__ import annotations

import numpy as np

from ..series.distance import early_abandon_euclidean_block
from ..storage.seriesfile import RawSeriesFile
from .base import BuildReport, Measurement, QueryResult, SeriesIndex


class SerialScan(SeriesIndex):
    """Full sequential scan of the raw file for every query."""

    name = "SerialScan"
    is_materialized = False

    def build(self, raw: RawSeriesFile) -> BuildReport:
        self.raw = raw
        self.built = True
        return BuildReport(index_name=self.name, n_series=raw.n_series)

    def insert_batch(self, data: np.ndarray) -> BuildReport:
        raw = self._require_built()
        with Measurement(self.disk) as measure:
            raw.append_batch(np.asarray(data, dtype=np.float32))
        return BuildReport(
            index_name=self.name,
            n_series=len(data),
            wall_s=measure.wall_s,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
        )

    def _scan(self, query: np.ndarray) -> QueryResult:
        query = self._query_array(query)
        with Measurement(self.disk) as measure:
            best_idx, best_dist = -1, float("inf")
            for start, block in self.raw.scan():
                # Fused refine: abandoned rows (inf) have distance
                # strictly above best_dist, so the argmin update below
                # sees bit-identical winners.
                distances = early_abandon_euclidean_block(
                    query, block.astype(np.float64), best_dist
                )
                j = int(np.argmin(distances))
                if distances[j] < best_dist:
                    best_dist = float(distances[j])
                    best_idx = start + j
        return QueryResult(
            answer_idx=best_idx,
            distance=best_dist,
            visited_records=self.raw.n_series,
            visited_leaves=0,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
            pruned_fraction=0.0,
        )

    def approximate_search(self, query: np.ndarray) -> QueryResult:
        return self._scan(query)

    def exact_search(self, query: np.ndarray) -> QueryResult:
        return self._scan(query)

    def query_batch(
        self, batch, query_workers=1, query_pool_kind="auto",
        scheduler="adaptive", bound_sharing="auto",
    ):
        """Answer the whole batch in a single pass over the raw file.

        The serial scan is where batching pays the most: Q queries cost
        one sequential read of the data instead of Q, with the distance
        work vectorized per block.  Results are identical to per-query
        scans.  ``query_workers > 1`` splits the file into contiguous
        page-aligned ranges scanned concurrently through read-only
        shards (:func:`repro.parallel.query.parallel_serial_scan_batch`)
        with bit-identical answers for any worker count.

        A full scan has no pruning, so ``bound_sharing`` is accepted
        and ignored; ``scheduler="adaptive"`` still plans the pass —
        the cost model clamps the fan-out when the file is too small
        to amortize its pool tasks — and the decision is recorded on
        ``report.plan``.
        """
        from ..core.knn import KNNOutcome, _BoundedMaxHeap
        from ..parallel.batch import build_batch_report
        from ..parallel.sched import plan_query_batch

        plan = plan_query_batch(
            batch,
            self,
            query_workers=query_workers,
            pool_kind=query_pool_kind,
            scheduler=scheduler,
            bound_sharing="off",
        )
        if plan.scan_workers > 1:
            # Approximate and exact scans are the same full pass here,
            # so the parallel path serves both modes.
            from ..parallel.query import parallel_serial_scan_batch

            report = parallel_serial_scan_batch(
                self, batch, plan.scan_workers, pool_kind=query_pool_kind
            )
            report.plan = plan
            return report

        queries = np.atleast_2d(np.asarray(batch.queries, dtype=np.float64))
        for query in queries:
            self._query_array(query)
        heaps = [_BoundedMaxHeap(batch.k) for _ in queries]
        with Measurement(self.disk) as measure:
            for start, block in self.raw.scan():
                block64 = block.astype(np.float64)
                for heap, query in zip(heaps, queries):
                    distances = early_abandon_euclidean_block(
                        query, block64, heap.threshold
                    )
                    top = np.argsort(distances, kind="stable")[: batch.k]
                    for j in top:
                        heap.offer(float(distances[j]), start + int(j))
        outcomes = []
        for heap in heaps:
            items = heap.sorted_items()
            outcomes.append(
                KNNOutcome(
                    answer_ids=[identifier for _, identifier in items],
                    distances=[distance for distance, _ in items],
                    visited_records=self.raw.n_series,
                    pruned_fraction=0.0,
                )
            )
        report = build_batch_report(outcomes, measure)
        report.plan = plan
        return report
