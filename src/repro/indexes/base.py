"""The common index interface and measurement reports.

Every index in the evaluation — the Coconut family and all baselines —
implements :class:`SeriesIndex`, so the benchmark harness can sweep
memory budgets, dataset sizes and query workloads uniformly.  Reports
carry both wall-clock time and classified simulated I/O, the two
currencies the paper's figures are plotted in.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

import numpy as np

from ..storage.cost import DiskStats
from ..storage.disk import SimulatedDisk
from ..storage.seriesfile import RawSeriesFile


@dataclass
class BuildReport:
    """Outcome of constructing (or batch-extending) an index."""

    index_name: str = ""
    n_series: int = 0
    wall_s: float = 0.0
    io: DiskStats = field(default_factory=DiskStats)
    simulated_io_ms: float = 0.0
    index_bytes: int = 0
    n_leaves: int = 0
    avg_leaf_fill: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def total_cost_s(self) -> float:
        """Simulated I/O time plus CPU wall time, in seconds."""
        return self.simulated_io_ms / 1000.0 + self.wall_s


@dataclass
class QueryResult:
    """Outcome of one similarity query."""

    answer_idx: int = -1
    distance: float = float("inf")
    visited_records: int = 0
    visited_leaves: int = 0
    io: DiskStats = field(default_factory=DiskStats)
    simulated_io_ms: float = 0.0
    wall_s: float = 0.0
    pruned_fraction: float = 0.0

    @property
    def total_cost_s(self) -> float:
        return self.simulated_io_ms / 1000.0 + self.wall_s


@dataclass
class QueryBatch:
    """Many similarity queries answered in one shared pass.

    ``mode`` selects the paper's two query flavors ("exact" or
    "approximate"); ``k`` generalizes to k nearest neighbors (k = 1 is
    Definition 2's similarity search).  Indexes that can share work
    across the batch — the Coconut family shares the SIMS summary scan
    and every fetched page; the serial scan answers the whole batch in
    a single pass over the raw file — override
    :meth:`SeriesIndex.query_batch`; everything else falls back to a
    per-query loop with identical results.
    """

    queries: np.ndarray
    k: int = 1
    mode: str = "exact"

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.mode not in ("exact", "approximate"):
            raise ValueError(f"mode must be exact|approximate, got {self.mode!r}")
        if self.mode == "approximate" and self.k != 1:
            raise ValueError(
                "approximate batches answer 1-NN only; use mode='exact' for k > 1"
            )

    @property
    def n_queries(self) -> int:
        return len(np.atleast_2d(np.asarray(self.queries)))


@dataclass
class BatchReport:
    """Outcome of one :class:`QueryBatch`: per-query answers + totals.

    ``results[i]`` is the 1-NN view of query ``i`` (its best answer);
    ``knn_ids[i]`` / ``knn_distances[i]`` hold the full k answers in
    ascending distance order.  I/O and wall time are totals for the
    whole batch — the quantity the batching experiments compare against
    the sum of per-query costs.
    """

    results: list[QueryResult] = field(default_factory=list)
    knn_ids: list[list[int]] = field(default_factory=list)
    knn_distances: list[list[float]] = field(default_factory=list)
    io: DiskStats = field(default_factory=DiskStats)
    simulated_io_ms: float = 0.0
    wall_s: float = 0.0
    #: The scheduler's recorded decision for this batch
    #: (:class:`repro.parallel.sched.PlanReport`), when an engine that
    #: plans produced the report; ``None`` for unplanned paths.
    plan: object | None = None

    @property
    def total_cost_s(self) -> float:
        return self.simulated_io_ms / 1000.0 + self.wall_s

    def __len__(self) -> int:
        return len(self.results)


class Measurement:
    """Context manager capturing wall time and I/O deltas of one step."""

    def __init__(self, disk: SimulatedDisk):
        self.disk = disk
        self.io = DiskStats()
        self.wall_s = 0.0
        self.simulated_io_ms = 0.0

    def __enter__(self) -> "Measurement":
        self._snapshot = self.disk.snapshot()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.wall_s = time.perf_counter() - self._t0
        self.io = self.disk.stats_since(self._snapshot)
        self.simulated_io_ms = self.disk.cost_model.io_ms(self.io)


class SeriesIndex(abc.ABC):
    """Interface shared by the Coconut indexes and all baselines.

    Subclasses set :attr:`name` and :attr:`is_materialized`, and
    implement construction plus the two query modes of the paper:
    approximate search (visit the most promising leaf or leaves) and
    exact search (guaranteed nearest neighbor).
    """

    name: str = "index"
    is_materialized: bool = False

    def __init__(self, disk: SimulatedDisk, memory_bytes: int):
        if memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be positive, got {memory_bytes}")
        self.disk = disk
        self.memory_bytes = memory_bytes
        self.raw: RawSeriesFile | None = None
        self.built = False

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build(self, raw: RawSeriesFile) -> BuildReport:
        """Construct the index over the raw file."""

    @abc.abstractmethod
    def approximate_search(self, query: np.ndarray) -> QueryResult:
        """Best-effort nearest neighbor (paper Sec. 4.2/4.3 querying)."""

    @abc.abstractmethod
    def exact_search(self, query: np.ndarray) -> QueryResult:
        """Guaranteed nearest neighbor."""

    def insert_batch(self, data: np.ndarray) -> BuildReport:
        """Add new series to the index (updates experiment, Fig. 10a)."""
        raise NotImplementedError(f"{self.name} does not support updates")

    # ------------------------------------------------------------------
    def exact_knn(self, query: np.ndarray, k: int):
        """Exact k nearest neighbors; returns a ``KNNOutcome``.

        k = 1 delegates to :meth:`exact_search` (the index's own pruned
        path).  For larger k the base implementation falls back to a
        ground-truth scan of the raw file — exact but unindexed, so
        SIMS-backed indexes override it with a pruned k-NN scan.
        """
        from ..core.knn import KNNOutcome, _BoundedMaxHeap  # deferred

        if k == 1:
            result = self.exact_search(query)
            answered = result.answer_idx >= 0
            return KNNOutcome(
                answer_ids=[result.answer_idx] if answered else [],
                distances=[result.distance] if answered else [],
                visited_records=result.visited_records,
                pruned_fraction=result.pruned_fraction,
                io=result.io,
                simulated_io_ms=result.simulated_io_ms,
                wall_s=result.wall_s,
            )
        from ..series.distance import early_abandon_euclidean_block

        query = self._query_array(query)
        heap = _BoundedMaxHeap(k)
        with Measurement(self.disk) as measure:
            for start, block in self._require_built().scan():
                # Fused refine against the block-start k-th best:
                # abandoned rows (inf) sit strictly above it, so the
                # heap retains exactly what the full-distance scan
                # would.
                distances = early_abandon_euclidean_block(
                    query, block.astype(np.float64), heap.threshold
                )
                for j in np.argsort(distances, kind="stable")[:k]:
                    heap.offer(float(distances[j]), start + int(j))
        items = heap.sorted_items()
        return KNNOutcome(
            answer_ids=[identifier for _, identifier in items],
            distances=[distance for distance, _ in items],
            visited_records=self._require_built().n_series,
            pruned_fraction=0.0,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
        )

    def query_batch(
        self,
        batch: QueryBatch,
        query_workers: int = 1,
        query_pool_kind: str = "auto",
        scheduler: str = "adaptive",
        bound_sharing: str = "auto",
    ) -> BatchReport:
        """Answer a :class:`QueryBatch`; default is a per-query loop.

        Subclasses that can share work across queries override this;
        the contract is that the returned (id, distance) answers are
        identical to issuing every query individually.
        ``query_workers`` requests the multi-worker engine on indexes
        that support it (the Coconut family and the serial scan; ``1``
        is the serial path, ``None``/``0`` means all cores); indexes
        without a parallel path accept and ignore it, answering
        serially with the same results.  ``query_pool_kind`` picks the
        worker pool (``"auto"``/``"thread"``/``"process"``/``"serial"``
        — the last replays the parallel plan inline, the I/O oracle).

        ``scheduler`` selects how the parallel engines plan the batch
        (``"adaptive"`` — the cost-model planner of
        :mod:`repro.parallel.sched`; ``"fixed"`` — the PR-4 plan,
        byte-threshold pools and requested workers) and
        ``bound_sharing`` controls the shared best-k bound of the
        exact fetch phase (``"auto"`` follows the scheduler — on under
        adaptive, off under fixed; ``"off"`` restores per-worker
        pruning and with it the replay-deterministic ``DiskStats``).
        Indexes without a parallel path accept and ignore both.
        """
        queries = np.atleast_2d(np.asarray(batch.queries, dtype=np.float64))
        results: list[QueryResult] = []
        ids: list[list[int]] = []
        distances: list[list[float]] = []
        with Measurement(self.disk) as measure:
            for query in queries:
                if batch.mode == "approximate":
                    result = self.approximate_search(query)
                elif batch.k == 1:
                    result = self.exact_search(query)
                else:
                    outcome = self.exact_knn(query, batch.k)
                    results.append(
                        QueryResult(
                            answer_idx=(
                                outcome.answer_ids[0]
                                if outcome.answer_ids
                                else -1
                            ),
                            distance=(
                                outcome.distances[0]
                                if outcome.distances
                                else float("inf")
                            ),
                            visited_records=outcome.visited_records,
                            pruned_fraction=outcome.pruned_fraction,
                        )
                    )
                    ids.append(list(outcome.answer_ids))
                    distances.append(list(outcome.distances))
                    continue
                results.append(result)
                answered = result.answer_idx >= 0
                ids.append([result.answer_idx] if answered else [])
                distances.append([result.distance] if answered else [])
        return BatchReport(
            results=results,
            knn_ids=ids,
            knn_distances=distances,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
        )

    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        """Bytes of secondary storage occupied by the index structure."""
        return 0

    def leaf_stats(self) -> tuple[int, float]:
        """(number of leaves, average leaf fill factor in [0, 1])."""
        return 0, 0.0

    def _require_built(self) -> RawSeriesFile:
        if not self.built or self.raw is None:
            raise RuntimeError(f"{self.name}: call build() before querying")
        return self.raw

    def _query_array(self, query: np.ndarray) -> np.ndarray:
        raw = self._require_built()
        query = np.asarray(query, dtype=np.float64).ravel()
        if len(query) != raw.length:
            raise ValueError(
                f"query length {len(query)} != indexed length {raw.length}"
            )
        return query

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, built={self.built})"
