"""The common index interface and measurement reports.

Every index in the evaluation — the Coconut family and all baselines —
implements :class:`SeriesIndex`, so the benchmark harness can sweep
memory budgets, dataset sizes and query workloads uniformly.  Reports
carry both wall-clock time and classified simulated I/O, the two
currencies the paper's figures are plotted in.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

import numpy as np

from ..storage.cost import DiskStats
from ..storage.disk import SimulatedDisk
from ..storage.seriesfile import RawSeriesFile


@dataclass
class BuildReport:
    """Outcome of constructing (or batch-extending) an index."""

    index_name: str = ""
    n_series: int = 0
    wall_s: float = 0.0
    io: DiskStats = field(default_factory=DiskStats)
    simulated_io_ms: float = 0.0
    index_bytes: int = 0
    n_leaves: int = 0
    avg_leaf_fill: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def total_cost_s(self) -> float:
        """Simulated I/O time plus CPU wall time, in seconds."""
        return self.simulated_io_ms / 1000.0 + self.wall_s


@dataclass
class QueryResult:
    """Outcome of one similarity query."""

    answer_idx: int = -1
    distance: float = float("inf")
    visited_records: int = 0
    visited_leaves: int = 0
    io: DiskStats = field(default_factory=DiskStats)
    simulated_io_ms: float = 0.0
    wall_s: float = 0.0
    pruned_fraction: float = 0.0

    @property
    def total_cost_s(self) -> float:
        return self.simulated_io_ms / 1000.0 + self.wall_s


class Measurement:
    """Context manager capturing wall time and I/O deltas of one step."""

    def __init__(self, disk: SimulatedDisk):
        self.disk = disk
        self.io = DiskStats()
        self.wall_s = 0.0
        self.simulated_io_ms = 0.0

    def __enter__(self) -> "Measurement":
        self._snapshot = self.disk.snapshot()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.wall_s = time.perf_counter() - self._t0
        self.io = self.disk.stats_since(self._snapshot)
        self.simulated_io_ms = self.disk.cost_model.io_ms(self.io)


class SeriesIndex(abc.ABC):
    """Interface shared by the Coconut indexes and all baselines.

    Subclasses set :attr:`name` and :attr:`is_materialized`, and
    implement construction plus the two query modes of the paper:
    approximate search (visit the most promising leaf or leaves) and
    exact search (guaranteed nearest neighbor).
    """

    name: str = "index"
    is_materialized: bool = False

    def __init__(self, disk: SimulatedDisk, memory_bytes: int):
        if memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be positive, got {memory_bytes}")
        self.disk = disk
        self.memory_bytes = memory_bytes
        self.raw: RawSeriesFile | None = None
        self.built = False

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build(self, raw: RawSeriesFile) -> BuildReport:
        """Construct the index over the raw file."""

    @abc.abstractmethod
    def approximate_search(self, query: np.ndarray) -> QueryResult:
        """Best-effort nearest neighbor (paper Sec. 4.2/4.3 querying)."""

    @abc.abstractmethod
    def exact_search(self, query: np.ndarray) -> QueryResult:
        """Guaranteed nearest neighbor."""

    def insert_batch(self, data: np.ndarray) -> BuildReport:
        """Add new series to the index (updates experiment, Fig. 10a)."""
        raise NotImplementedError(f"{self.name} does not support updates")

    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        """Bytes of secondary storage occupied by the index structure."""
        return 0

    def leaf_stats(self) -> tuple[int, float]:
        """(number of leaves, average leaf fill factor in [0, 1])."""
        return 0, 0.0

    def _require_built(self) -> RawSeriesFile:
        if not self.built or self.raw is None:
            raise RuntimeError(f"{self.name}: call build() before querying")
        return self.raw

    def _query_array(self, query: np.ndarray) -> np.ndarray:
        raw = self._require_built()
        query = np.asarray(query, dtype=np.float64).ravel()
        if len(query) != raw.length:
            raise ValueError(
                f"query length {len(query)} != indexed length {raw.length}"
            )
        return query

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, built={self.built})"
