"""iSAX 2.0: top-down insertion with main-memory buffering (Fig. 3).

The pre-Coconut state of the art and the structural substrate of the
ADS baselines.  Internal nodes live in main memory; leaf records are
buffered in a First Buffer Layer (FBL) and flushed when the memory
budget fills up.  Every flush of a leaf is a read-modify-write of that
leaf's pages, and splits allocate children wherever the disk allocator
happens to be — so leaves end up scattered (non-contiguous), which is
exactly the construction and query pathology Sec. 3 analyzes.

Node splitting is prefix-based: the segment whose next unprefixed bit
best divides the resident series is promoted by one bit.  Data that do
not share prefixes can never cohabit a leaf, so leaves are sparsely
populated (low fill factors), amplifying storage and query costs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..series.distance import early_abandon_euclidean_block
from ..storage.disk import SimulatedDisk
from ..storage.seriesfile import RawSeriesFile
from ..summaries.isax import ISAXPrefix
from ..summaries.paa import paa
from ..summaries.sax import SAXConfig, sax_words
from .base import BuildReport, Measurement, QueryResult, SeriesIndex


def _leaf_record_dtype(config: SAXConfig, length: int, materialized: bool) -> np.dtype:
    fields = [("w", "<u2", (config.word_length,)), ("off", "<i8")]
    if materialized:
        fields.append(("series", "<f4", (length,)))
    return np.dtype(fields)


@dataclass
class _Leaf:
    """A leaf node: an iSAX prefix region plus its resident records."""

    prefix: ISAXPrefix
    first_page: int = -1
    n_pages: int = 0
    on_disk: int = 0
    buffer_words: list[np.ndarray] = field(default_factory=list)
    buffer_offsets: list[int] = field(default_factory=list)
    buffer_series: list[np.ndarray] = field(default_factory=list)
    materialized: bool = False  # for ADS+: raw series present on disk

    @property
    def buffered(self) -> int:
        return len(self.buffer_offsets)

    @property
    def count(self) -> int:
        return self.on_disk + self.buffered


@dataclass
class _Internal:
    prefix: ISAXPrefix
    split_segment: int
    children: dict[int, object] = field(default_factory=dict)  # bit -> node


class ISAXTree:
    """The buffered, prefix-split tree shared by iSAX 2.0 and ADS.

    The root fans out on the vector of per-segment first bits (the
    classic iSAX root); below it, nodes split one segment bit at a
    time.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        config: SAXConfig,
        raw_length: int,
        leaf_size: int,
        memory_bytes: int,
        materialized: bool,
    ):
        self.disk = disk
        self.config = config
        self.leaf_size = leaf_size
        self.memory_bytes = memory_bytes
        self.materialized = materialized
        self.record_dtype = _leaf_record_dtype(config, raw_length, materialized)
        self.raw_length = raw_length
        self.root: dict[tuple, object] = {}
        self.leaves: list[_Leaf] = []
        self.buffered_records = 0
        self.dead_pages = 0
        self.n_splits = 0
        self.n_leaf_flushes = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _root_key(self, word: np.ndarray) -> tuple:
        shift = self.config.bits_per_symbol - 1
        return tuple(int(s) >> shift for s in word)

    def route(self, word: np.ndarray, create: bool = True) -> _Leaf | None:
        """Find (or create) the leaf whose region contains ``word``.

        With ``create=False`` (query-time routing) the result is
        guaranteed to be a *populated* leaf whenever the tree holds any
        records: missing root children and empty split siblings fall
        back to the nearest populated region.
        """
        key = self._root_key(word)
        node = self.root.get(key)
        if node is None:
            if not create:
                return self._nearest_populated_leaf(word)
            bits = (1,) * self.config.word_length
            prefix = ISAXPrefix(key, bits)
            node = _Leaf(prefix=prefix)
            self.root[key] = node
            self.leaves.append(node)
            return node
        while isinstance(node, _Internal):
            full = self.config.bits_per_symbol
            segment = node.split_segment
            depth = node.prefix.bits[segment]
            bit = (int(word[segment]) >> (full - depth - 1)) & 1
            node = node.children[bit]
        if not create and node.count == 0:
            return self._nearest_populated_leaf(word)
        return node

    def _nearest_populated_leaf(self, word: np.ndarray) -> _Leaf | None:
        """Query-time fallback: closest non-empty region by first bits."""
        candidates = [leaf for leaf in self.leaves if leaf.count]
        if not candidates:
            return None
        key = np.array(self._root_key(word))

        def first_bits(leaf: _Leaf) -> np.ndarray:
            return np.array(
                [
                    (symbol >> (bit - 1)) & 1 if bit else 0
                    for symbol, bit in zip(leaf.prefix.symbols, leaf.prefix.bits)
                ]
            )

        return min(
            candidates, key=lambda leaf: int(np.sum(first_bits(leaf) != key))
        )

    # ------------------------------------------------------------------
    # Insertion with FBL buffering
    # ------------------------------------------------------------------
    def insert(
        self, word: np.ndarray, offset: int, series: np.ndarray | None = None
    ) -> None:
        leaf = self.route(word)
        leaf.buffer_words.append(np.asarray(word, dtype=np.uint16))
        leaf.buffer_offsets.append(int(offset))
        if self.materialized:
            leaf.buffer_series.append(np.asarray(series, dtype=np.float32))
        self.buffered_records += 1
        if self.buffered_records * self.record_dtype.itemsize > self.memory_bytes:
            self.flush_all()

    def flush_all(self) -> None:
        """Flush every dirty leaf buffer to disk (paper Fig. 3)."""
        for leaf in list(self.leaves):
            if leaf.buffered:
                self._flush_leaf(leaf)
        self.buffered_records = 0

    def _read_leaf_records(self, leaf: _Leaf) -> np.ndarray:
        if leaf.on_disk == 0 or leaf.first_page < 0:
            return np.empty(0, dtype=self.record_dtype)
        # One bulk run read (zero-copy on arena stores); counters are
        # bit-identical to the per-page loop it replaces.
        raw = self.disk.read_run_bytes(leaf.first_page, leaf.n_pages)
        return np.frombuffer(
            raw[: leaf.on_disk * self.record_dtype.itemsize],
            dtype=self.record_dtype,
        )

    def _leaf_records_in_memory(self, leaf: _Leaf) -> np.ndarray:
        """All records of a leaf (disk + buffer), reading disk pages."""
        existing = self._read_leaf_records(leaf)
        merged = np.zeros(leaf.count, dtype=self.record_dtype)
        merged[: leaf.on_disk] = existing
        if leaf.buffered:
            merged["w"][leaf.on_disk :] = np.vstack(leaf.buffer_words)
            merged["off"][leaf.on_disk :] = leaf.buffer_offsets
            if self.materialized:
                merged["series"][leaf.on_disk :] = np.vstack(leaf.buffer_series)
        return merged

    def _write_leaf_records(self, leaf: _Leaf, records: np.ndarray) -> None:
        """Allocate-if-needed and write; allocations scatter leaves."""
        data = records.tobytes()
        needed = max(1, -(-len(data) // self.disk.page_size))
        if needed > leaf.n_pages:
            if leaf.first_page >= 0:
                self.dead_pages += leaf.n_pages
            leaf.first_page = self.disk.allocate(needed)
            leaf.n_pages = needed
        for i in range(needed):
            chunk = data[i * self.disk.page_size : (i + 1) * self.disk.page_size]
            self.disk.write_page(leaf.first_page + i, chunk)
        leaf.on_disk = len(records)
        self.n_leaf_flushes += 1

    def _flush_leaf(self, leaf: _Leaf) -> None:
        records = self._leaf_records_in_memory(leaf)
        leaf.buffer_words.clear()
        leaf.buffer_offsets.clear()
        leaf.buffer_series.clear()
        if len(records) > self.leaf_size:
            self._split_leaf(leaf, records)
        else:
            self._write_leaf_records(leaf, records)

    def _split_leaf(self, leaf: _Leaf, records: np.ndarray) -> None:
        """Prefix split (Sec. 3.2), recursing while children overflow."""
        try:
            segment = leaf.prefix.choose_split_segment(records["w"], self.config)
        except ValueError:
            # Identical words at full depth: an overflow leaf.
            self._write_leaf_records(leaf, records)
            return
        self.n_splits += 1
        left_prefix, right_prefix = leaf.prefix.split(segment)
        full = self.config.bits_per_symbol
        depth = leaf.prefix.bits[segment]
        bits = (records["w"][:, segment] >> (full - depth - 1)) & 1
        internal = _Internal(prefix=leaf.prefix, split_segment=segment)
        if leaf.first_page >= 0:
            self.dead_pages += leaf.n_pages
        self.leaves.remove(leaf)
        self._replace_node(leaf, internal)
        for bit, prefix in ((0, left_prefix), (1, right_prefix)):
            child = _Leaf(prefix=prefix)
            internal.children[bit] = child
            self.leaves.append(child)
            subset = records[bits == bit]
            if len(subset) > self.leaf_size:
                self._split_leaf(child, subset)
            elif len(subset):
                self._write_leaf_records(child, subset)

    def _replace_node(self, old, new) -> None:
        for key, node in self.root.items():
            if node is old:
                self.root[key] = new
                return
            stack = [node]
            while stack:
                current = stack.pop()
                if isinstance(current, _Internal):
                    for bit, child in current.children.items():
                        if child is old:
                            current.children[bit] = new
                            return
                        stack.append(child)
        raise AssertionError("node not found in tree")  # pragma: no cover

    # ------------------------------------------------------------------
    # Traversal / stats
    # ------------------------------------------------------------------
    def iter_nodes(self):
        stack = list(self.root.values())
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, _Internal):
                stack.extend(node.children.values())

    def storage_bytes(self) -> int:
        live = sum(leaf.n_pages for leaf in self.leaves)
        return (live + self.dead_pages) * self.disk.page_size

    def leaf_stats(self) -> tuple[int, float]:
        occupied = [leaf for leaf in self.leaves if leaf.count]
        if not occupied:
            return 0, 0.0
        fills = [leaf.count / self.leaf_size for leaf in occupied]
        return len(occupied), float(np.mean(fills))


class ISAX2Index(SeriesIndex):
    """iSAX 2.0 as a standalone index (top-down construction)."""

    def __init__(
        self,
        disk: SimulatedDisk,
        memory_bytes: int,
        config: SAXConfig | None = None,
        leaf_size: int = 100,
        materialized: bool = True,
    ):
        super().__init__(disk, memory_bytes)
        self.config = config or SAXConfig()
        self.leaf_size = leaf_size
        self.is_materialized = materialized
        self.name = "iSAX2.0" if materialized else "iSAX2.0+"
        self.tree: ISAXTree | None = None

    def build(self, raw: RawSeriesFile) -> BuildReport:
        self.raw = raw
        with Measurement(self.disk) as measure:
            self.tree = ISAXTree(
                self.disk,
                self.config,
                raw.length,
                self.leaf_size,
                self.memory_bytes,
                self.is_materialized,
            )
            for start, block in raw.scan():
                words = sax_words(block, self.config)
                for i in range(len(block)):
                    self.tree.insert(
                        words[i],
                        start + i,
                        block[i] if self.is_materialized else None,
                    )
            self.tree.flush_all()
        self.built = True
        n_leaves, fill = self.leaf_stats()
        return BuildReport(
            index_name=self.name,
            n_series=raw.n_series,
            wall_s=measure.wall_s,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            index_bytes=self.storage_bytes(),
            n_leaves=n_leaves,
            avg_leaf_fill=fill,
            extra={
                "splits": self.tree.n_splits,
                "leaf_flushes": self.tree.n_leaf_flushes,
            },
        )

    def insert_batch(self, data: np.ndarray) -> BuildReport:
        raw = self._require_built()
        data = np.asarray(data, dtype=np.float32)
        with Measurement(self.disk) as measure:
            first = raw.append_batch(data)
            words = sax_words(data, self.config)
            for i in range(len(data)):
                self.tree.insert(
                    words[i],
                    first + i,
                    data[i] if self.is_materialized else None,
                )
        n_leaves, fill = self.leaf_stats()
        return BuildReport(
            index_name=self.name,
            n_series=len(data),
            wall_s=measure.wall_s,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            index_bytes=self.storage_bytes(),
            n_leaves=n_leaves,
            avg_leaf_fill=fill,
        )

    # ------------------------------------------------------------------
    def _leaf_distances(
        self, query: np.ndarray, leaf: _Leaf
    ) -> tuple[np.ndarray, np.ndarray]:
        records = self.tree._leaf_records_in_memory(leaf)
        if len(records) == 0:
            return np.empty(0), np.empty(0, dtype=np.int64)
        if self.is_materialized:
            series = records["series"].astype(np.float64)
        else:
            series = self.raw.get_many(records["off"])
        distances = early_abandon_euclidean_block(query, series, float("inf"))
        return distances, records["off"].astype(np.int64)

    def approximate_search(self, query: np.ndarray) -> QueryResult:
        query = self._query_array(query)
        with Measurement(self.disk) as measure:
            word = sax_words(query[None, :], self.config)[0]
            leaf = self.tree.route(word, create=False)
            best_idx, best_dist, visited = -1, float("inf"), 0
            if leaf is not None and leaf.count:
                distances, offsets = self._leaf_distances(query, leaf)
                visited = len(offsets)
                j = int(np.argmin(distances))
                best_idx, best_dist = int(offsets[j]), float(distances[j])
        return QueryResult(
            answer_idx=best_idx,
            distance=best_dist,
            visited_records=visited,
            visited_leaves=1 if visited else 0,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
        )

    def exact_search(self, query: np.ndarray) -> QueryResult:
        """Classic best-first tree search with mindist pruning."""
        query = self._query_array(query)
        with Measurement(self.disk) as measure:
            query_paa = paa(query, self.config.word_length)[0]
            seed = self.approximate_search(query)
            bsf, answer = seed.distance, seed.answer_idx
            visited, leaves_read = seed.visited_records, seed.visited_leaves
            heap = []
            for i, node in enumerate(self.root_nodes()):
                heapq.heappush(
                    heap, (node.prefix.mindist(query_paa, self.config), i, node)
                )
            counter = len(heap)
            while heap:
                mindist, _, node = heapq.heappop(heap)
                if mindist >= bsf:
                    break
                if isinstance(node, _Internal):
                    for child in node.children.values():
                        counter += 1
                        heapq.heappush(
                            heap,
                            (
                                child.prefix.mindist(query_paa, self.config),
                                counter,
                                child,
                            ),
                        )
                    continue
                if not node.count:
                    continue
                distances, offsets = self._leaf_distances(query, node)
                visited += len(offsets)
                leaves_read += 1
                j = int(np.argmin(distances))
                if distances[j] < bsf:
                    bsf, answer = float(distances[j]), int(offsets[j])
        n = self.raw.n_series
        return QueryResult(
            answer_idx=answer,
            distance=bsf,
            visited_records=visited,
            visited_leaves=leaves_read,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
            pruned_fraction=1.0 - visited / n if n else 0.0,
        )

    def root_nodes(self):
        return list(self.tree.root.values())

    def storage_bytes(self) -> int:
        return self.tree.storage_bytes() if self.tree else 0

    def leaf_stats(self) -> tuple[int, float]:
        return self.tree.leaf_stats() if self.tree else (0, 0.0)
