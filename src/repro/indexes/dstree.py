"""DSTree: data-adaptive segmentation tree (Wang et al., PVLDB 2013).

A materialized baseline built by inserting series one at a time,
top-down.  Every node carries an *adaptive* segmentation and an EAPCA
synopsis (per-segment min/max of mean and standard deviation over the
resident series), which yields tight lower bounds for pruning.

Splits are data-adaptive: the node picks the segment and statistic
(mean or std) whose resident values spread the most, thresholding at
the midpoint ("horizontal" split); periodically a segment is first
subdivided ("vertical" split) so descendants summarize at finer
granularity.  Construction is the slowest of all baselines — the
behaviour the paper reports (">24 hours in most cases") — because
every leaf overflow re-reads and rewrites scattered leaf pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..series.distance import euclidean_batch
from ..storage.disk import SimulatedDisk
from ..storage.seriesfile import RawSeriesFile
from ..summaries.eapca import eapca, node_lower_bound
from .base import BuildReport, Measurement, QueryResult, SeriesIndex


@dataclass
class _Node:
    boundaries: np.ndarray
    depth: int = 0
    # Synopsis over resident series (leaf) or subtree (internal).
    mean_min: np.ndarray | None = None
    mean_max: np.ndarray | None = None
    std_min: np.ndarray | None = None
    std_max: np.ndarray | None = None
    count: int = 0
    # Leaf storage.
    first_page: int = -1
    n_pages: int = 0
    on_disk: int = 0
    buffer_offsets: list[int] = field(default_factory=list)
    buffer_series: list[np.ndarray] = field(default_factory=list)
    # Internal routing.
    split_segment: int = -1
    split_on_std: bool = False
    threshold: float = 0.0
    children: list["_Node"] | None = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    @property
    def buffered(self) -> int:
        return len(self.buffer_offsets)

    @property
    def total(self) -> int:
        return self.on_disk + self.buffered

    def update_synopsis(self, means: np.ndarray, stds: np.ndarray) -> None:
        if self.mean_min is None:
            self.mean_min = means.copy()
            self.mean_max = means.copy()
            self.std_min = stds.copy()
            self.std_max = stds.copy()
        else:
            np.minimum(self.mean_min, means, out=self.mean_min)
            np.maximum(self.mean_max, means, out=self.mean_max)
            np.minimum(self.std_min, stds, out=self.std_min)
            np.maximum(self.std_max, stds, out=self.std_max)
        self.count += 1

    def lower_bound(self, query: np.ndarray) -> float:
        if self.mean_min is None:
            return float("inf")
        return node_lower_bound(
            query,
            self.boundaries,
            self.mean_min,
            self.mean_max,
            self.std_min,
            self.std_max,
        )


class DSTree(SeriesIndex):
    """Top-down EAPCA segmentation tree (materialized)."""

    name = "DSTree"
    is_materialized = True

    def __init__(
        self,
        disk: SimulatedDisk,
        memory_bytes: int,
        leaf_size: int = 100,
        initial_segments: int = 4,
        vertical_split_every: int = 2,
    ):
        super().__init__(disk, memory_bytes)
        self.leaf_size = leaf_size
        self.initial_segments = initial_segments
        self.vertical_split_every = max(1, vertical_split_every)
        self.root: _Node | None = None
        self.buffered_records = 0
        self.dead_pages = 0
        self.n_splits = 0
        self._record_dtype: np.dtype | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, raw: RawSeriesFile) -> BuildReport:
        self.raw = raw
        self._record_dtype = np.dtype(
            [("off", "<i8"), ("series", "<f4", (raw.length,))]
        )
        boundaries = (
            np.arange(self.initial_segments + 1) * raw.length
        ) // self.initial_segments
        self.root = _Node(boundaries=boundaries.astype(np.int64))
        with Measurement(self.disk) as measure:
            for start, block in raw.scan():
                for i in range(len(block)):
                    self._insert(block[i], start + i)
            self._flush_all()
        self.built = True
        n_leaves, fill = self.leaf_stats()
        return BuildReport(
            index_name=self.name,
            n_series=raw.n_series,
            wall_s=measure.wall_s,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            index_bytes=self.storage_bytes(),
            n_leaves=n_leaves,
            avg_leaf_fill=fill,
            extra={"splits": self.n_splits},
        )

    def _route_stat(self, node: _Node, series: np.ndarray) -> float:
        means, stds = eapca(series[None, :], node.boundaries)
        value = (stds if node.split_on_std else means)[0, node.split_segment]
        return float(value)

    def _insert(self, series: np.ndarray, offset: int) -> None:
        node = self.root
        while True:
            means, stds = eapca(series[None, :], node.boundaries)
            node.update_synopsis(means[0], stds[0])
            if node.is_leaf:
                break
            value = (stds if node.split_on_std else means)[0, node.split_segment]
            node = node.children[0 if value <= node.threshold else 1]
        node.buffer_offsets.append(int(offset))
        node.buffer_series.append(np.asarray(series, dtype=np.float32))
        self.buffered_records += 1
        if self.buffered_records * self._record_dtype.itemsize > self.memory_bytes:
            self._flush_all()
        if node.total > self.leaf_size:
            self._split_leaf(node)

    def _flush_all(self) -> None:
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                if node.buffered:
                    self._flush_leaf(node)
            else:
                stack.extend(node.children)
        self.buffered_records = 0

    def _leaf_records(self, leaf: _Node) -> np.ndarray:
        existing = np.empty(0, dtype=self._record_dtype)
        if leaf.on_disk and leaf.first_page >= 0:
            # One bulk run read (zero-copy on arena stores); counters
            # are bit-identical to the per-page loop it replaces.
            raw_bytes = self.disk.read_run_bytes(leaf.first_page, leaf.n_pages)
            existing = np.frombuffer(
                raw_bytes[: leaf.on_disk * self._record_dtype.itemsize],
                dtype=self._record_dtype,
            )
        merged = np.zeros(leaf.total, dtype=self._record_dtype)
        merged[: leaf.on_disk] = existing
        if leaf.buffered:
            merged["off"][leaf.on_disk :] = leaf.buffer_offsets
            merged["series"][leaf.on_disk :] = np.vstack(leaf.buffer_series)
        return merged

    def _write_leaf(self, leaf: _Node, records: np.ndarray) -> None:
        data = records.tobytes()
        needed = max(1, -(-len(data) // self.disk.page_size))
        if needed > leaf.n_pages:
            if leaf.first_page >= 0:
                self.dead_pages += leaf.n_pages
            leaf.first_page = self.disk.allocate(needed)
            leaf.n_pages = needed
        for i in range(needed):
            self.disk.write_page(
                leaf.first_page + i,
                data[i * self.disk.page_size : (i + 1) * self.disk.page_size],
            )
        leaf.on_disk = len(records)

    def _flush_leaf(self, leaf: _Node) -> None:
        records = self._leaf_records(leaf)
        leaf.buffer_offsets.clear()
        leaf.buffer_series.clear()
        self._write_leaf(leaf, records)

    def _choose_split(
        self, node: _Node, means: np.ndarray, stds: np.ndarray
    ) -> tuple[int, bool, float]:
        """Pick the (segment, statistic) with the widest spread."""
        sizes = np.diff(node.boundaries).astype(np.float64)
        mean_spread = (means.max(axis=0) - means.min(axis=0)) * np.sqrt(sizes)
        std_spread = (stds.max(axis=0) - stds.min(axis=0)) * np.sqrt(sizes)
        if mean_spread.max() >= std_spread.max():
            segment = int(np.argmax(mean_spread))
            column = means[:, segment]
            return segment, False, float(np.median(column))
        segment = int(np.argmax(std_spread))
        column = stds[:, segment]
        return segment, True, float(np.median(column))

    def _split_leaf(self, leaf: _Node) -> None:
        records = self._leaf_records(leaf)
        self.buffered_records = max(0, self.buffered_records - leaf.buffered)
        leaf.buffer_offsets.clear()
        leaf.buffer_series.clear()
        if leaf.first_page >= 0:
            self.dead_pages += leaf.n_pages
            leaf.first_page, leaf.n_pages, leaf.on_disk = -1, 0, 0
        boundaries = leaf.boundaries
        # Vertical split: refine the longest segment periodically.
        if leaf.depth % self.vertical_split_every == 1:
            sizes = np.diff(boundaries)
            widest = int(np.argmax(sizes))
            if sizes[widest] >= 4:
                middle = (boundaries[widest] + boundaries[widest + 1]) // 2
                boundaries = np.insert(boundaries, widest + 1, middle)
        series = records["series"].astype(np.float64)
        means, stds = eapca(series, boundaries)
        segment, on_std, threshold = self._choose_split(
            _Node(boundaries=boundaries), means, stds
        )
        column = (stds if on_std else means)[:, segment]
        left_mask = column <= threshold
        if left_mask.all() or not left_mask.any():
            # Degenerate spread: rewrite as an overflow leaf.
            self._write_leaf(leaf, records)
            return
        self.n_splits += 1
        leaf.split_segment = segment
        leaf.split_on_std = on_std
        leaf.threshold = threshold
        leaf.boundaries = boundaries
        # The synopsis was accumulated under the pre-refinement
        # segmentation; rebuild it under the node's new boundaries so
        # lower bounds stay valid.
        leaf.mean_min = means.min(axis=0)
        leaf.mean_max = means.max(axis=0)
        leaf.std_min = stds.min(axis=0)
        leaf.std_max = stds.max(axis=0)
        leaf.children = []
        for mask in (left_mask, ~left_mask):
            child = _Node(boundaries=boundaries, depth=leaf.depth + 1)
            child_means, child_stds = eapca(series[mask], boundaries)
            for m, s in zip(child_means, child_stds):
                child.update_synopsis(m, s)
            self._write_leaf(child, records[mask])
            leaf.children.append(child)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _leaf_for(self, query: np.ndarray) -> _Node:
        node = self.root
        while not node.is_leaf:
            value = self._route_stat(node, query)
            node = node.children[0 if value <= node.threshold else 1]
        return node

    def _leaf_distances(self, query, leaf) -> tuple[np.ndarray, np.ndarray]:
        records = self._leaf_records(leaf)
        if len(records) == 0:
            return np.empty(0), np.empty(0, dtype=np.int64)
        distances = euclidean_batch(query, records["series"].astype(np.float64))
        return distances, records["off"].astype(np.int64)

    def approximate_search(self, query: np.ndarray) -> QueryResult:
        query = self._query_array(query)
        with Measurement(self.disk) as measure:
            leaf = self._leaf_for(query)
            best_idx, best_dist, visited = -1, float("inf"), 0
            if leaf.total:
                distances, offsets = self._leaf_distances(query, leaf)
                visited = len(offsets)
                j = int(np.argmin(distances))
                best_idx, best_dist = int(offsets[j]), float(distances[j])
        return QueryResult(
            answer_idx=best_idx,
            distance=best_dist,
            visited_records=visited,
            visited_leaves=1 if visited else 0,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
        )

    def exact_search(self, query: np.ndarray) -> QueryResult:
        import heapq

        query = self._query_array(query)
        with Measurement(self.disk) as measure:
            seed = self.approximate_search(query)
            bsf, answer = seed.distance, seed.answer_idx
            visited, leaves_read = seed.visited_records, seed.visited_leaves
            counter = 0
            heap = [(self.root.lower_bound(query), counter, self.root)]
            while heap:
                bound, _, node = heapq.heappop(heap)
                if bound >= bsf:
                    break
                if not node.is_leaf:
                    for child in node.children:
                        counter += 1
                        heapq.heappush(
                            heap, (child.lower_bound(query), counter, child)
                        )
                    continue
                if not node.total:
                    continue
                distances, offsets = self._leaf_distances(query, node)
                visited += len(offsets)
                leaves_read += 1
                j = int(np.argmin(distances))
                if distances[j] < bsf:
                    bsf, answer = float(distances[j]), int(offsets[j])
        n = self.raw.n_series
        return QueryResult(
            answer_idx=answer,
            distance=bsf,
            visited_records=visited,
            visited_leaves=leaves_read,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
            pruned_fraction=1.0 - visited / n if n else 0.0,
        )

    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        live = 0
        stack = [self.root] if self.root else []
        while stack:
            node = stack.pop()
            if node.is_leaf:
                live += node.n_pages
            else:
                stack.extend(node.children)
        return (live + self.dead_pages) * self.disk.page_size

    def leaf_stats(self) -> tuple[int, float]:
        counts = []
        stack = [self.root] if self.root else []
        while stack:
            node = stack.pop()
            if node.is_leaf:
                if node.total:
                    counts.append(node.total)
            else:
                stack.extend(node.children)
        if not counts:
            return 0, 0.0
        return len(counts), float(np.mean([c / self.leaf_size for c in counts]))
