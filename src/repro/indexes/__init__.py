"""Baseline indexes from the paper's evaluation, plus the shared API."""

from .ads import ADSIndex
from .base import BuildReport, Measurement, QueryResult, SeriesIndex
from .dstree import DSTree
from .isax2 import ISAX2Index, ISAXTree
from .rtree import RTreeIndex
from .serial import SerialScan
from .vertical import VerticalIndex

__all__ = [
    "ADSIndex",
    "BuildReport",
    "DSTree",
    "ISAX2Index",
    "ISAXTree",
    "Measurement",
    "QueryResult",
    "RTreeIndex",
    "SerialScan",
    "SeriesIndex",
    "VerticalIndex",
]
