"""Baseline indexes from the paper's evaluation, plus the shared API."""

from .ads import ADSIndex
from .base import (
    BatchReport,
    BuildReport,
    Measurement,
    QueryBatch,
    QueryResult,
    SeriesIndex,
)
from .dstree import DSTree
from .isax2 import ISAX2Index, ISAXTree
from .rtree import RTreeIndex
from .serial import SerialScan
from .vertical import VerticalIndex

__all__ = [
    "ADSIndex",
    "BatchReport",
    "BuildReport",
    "DSTree",
    "ISAX2Index",
    "ISAXTree",
    "Measurement",
    "QueryBatch",
    "QueryResult",
    "RTreeIndex",
    "SerialScan",
    "SeriesIndex",
    "VerticalIndex",
]
